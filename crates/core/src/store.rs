//! The owned, thread-safe store façade — the public entry point of
//! `utcq_core`.
//!
//! [`Store`] owns its road network through an [`Arc`], so it has no
//! lifetime parameter, is `Send + Sync`, and can be shared across worker
//! threads or wrapped in a service handle. It is constructed either
//!
//! * incrementally, through [`StoreBuilder`] — batches of newly arrived
//!   trajectories are compressed and indexed *as they are ingested*;
//!   pivot/reference selection runs only over each new cohort (it is
//!   per-trajectory, §4.3) and the StIU postings merge into the index in
//!   place, so earlier batches are never recompressed; or
//! * from disk, through [`Store::open`] on a self-contained v2 container
//!   (embedded network + dataset + StIU index), or [`Store::open_v1`]
//!   for legacy containers that need the network supplied out of band.
//!
//! # Snapshots and live ingest
//!
//! Since the snapshot refactor, `Store` is a **thin handle**: all read
//! state (compressed dataset, StIU index, query plans, id map) lives in
//! an immutable, epoch-stamped [`Snapshot`] behind an `Arc`, and every
//! query pins the current snapshot for its duration. That makes the
//! store *live*: [`Store::ingest`] accepts new batches concurrently
//! with queries — the batch compresses and indexes off the query path
//! against a private clone of the current state, then publishes
//! atomically as the next epoch. Queries never block on ingest (they
//! never take the writer lock), in-flight queries and pinned snapshots
//! keep their epoch, and a published store is byte-identical to an
//! offline [`StoreBuilder`] build of the same batches
//! (`tests/live_ingest.rs` asserts both). [`Store::snapshot`] exposes
//! the pinning primitive directly for multi-page walks and live
//! checkpoints ([`Snapshot::save`]).
//!
//! Queries are paginated and limit-bounded: each entry point takes a
//! [`PageRequest`] and returns a [`Page`] with `has_more`/cursor
//! semantics, so a service can stream large answers without unbounded
//! allocations. Ingest only appends, so cursors minted against an older
//! epoch stay valid against newer ones. [`Store::par_range_query`]
//! evaluates a batch of range queries across all available cores,
//! pulling work from a shared atomic-counter queue so skewed batches
//! still balance.
//!
//! # Query acceleration layers
//!
//! The store owns two layers the query engine runs on:
//!
//! * a shared, bounded, thread-safe **decode cache**
//!   ([`crate::cache::DecodeCache`]): decoded references, fully decoded
//!   instances and time sequences are memoized behind `Arc`s across
//!   queries and across threads, with a configurable byte budget
//!   ([`StoreBuilder::cache_bytes`], [`Store::set_cache_bytes`]; `0`
//!   disables caching) and hit/miss/eviction counters
//!   ([`Store::cache_stats`]). The cache is shared across epochs, but
//!   its keys carry the minting epoch, so entries of superseded
//!   snapshots retire through normal LRU eviction instead of aliasing;
//! * per-trajectory **query plans** ([`crate::plan::TrajPlan`]), built
//!   once at `build`/`open`/`ingest` time: `orig_idx → slot` lookup
//!   tables and probability-sorted member lists that replace the
//!   per-call linear scans and sorts the hot paths used to do.
//!
//! Cached and uncached stores return identical answers — the cache only
//! memoizes deterministic decodes (`tests/cache_equivalence.rs` asserts
//! this on randomized stores).

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use utcq_network::{EdgeId, Rect, RoadNetwork};
use utcq_traj::{Dataset, UncertainTrajectory};

use crate::cache::{CacheStats, DecodeCache, DEFAULT_CACHE_BYTES};
use crate::chunk::{ChunkedVec, SharedIdMap};
use crate::compress::{CompressedDataset, Ratios};
use crate::compressed::edge_number_width;
use crate::error::Error;
use crate::params::CompressParams;
use crate::plan::TrajPlan;
use crate::query::{Page, PageRequest, RangeQuery, WhenHit, WhereHit};
use crate::snapshot::{PartitionState, Snapshot, Swap};
use crate::stiu::{Stiu, StiuParams};
use crate::wal::{self, CheckpointReport, Durability, Sidecar, TailRead, WalConfig};

/// What one [`Store::ingest`] (or [`crate::shard::ShardedStore::ingest`])
/// publication did — echoed verbatim by the serve protocol's `ingest`
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Trajectories added by this batch.
    pub ingested: usize,
    /// Trajectories in the store after the publish.
    pub total: usize,
    /// The epoch the batch was published as (the snapshot epoch for a
    /// single store, the facade epoch for a sharded one).
    pub epoch: u64,
}

/// A compressed dataset plus its StIU index, owning the road network —
/// ready for querying, live ingest, persisting, and sharing across
/// threads. See the [module docs](self) for the snapshot/epoch model.
pub struct Store {
    net: Arc<RoadNetwork>,
    /// Shared across every epoch's snapshot; keys carry the epoch.
    cache: Arc<DecodeCache>,
    /// The current epoch — queries pin it, [`Store::ingest`] swaps it.
    snap: Swap<Snapshot>,
    /// Epoch the next publish will carry (the initial state is epoch 0).
    next_epoch: AtomicU64,
    /// Serializes writers; queries never touch it.
    writer: Mutex<()>,
    /// The attached write-ahead log, if any (see [`crate::wal`]). Taken
    /// only by writers, always after the writer lock.
    durability: Mutex<Option<Sidecar>>,
}

/// Incremental construction of a [`Store`].
///
/// ```no_run
/// # fn demo(net: std::sync::Arc<utcq_network::RoadNetwork>,
/// #         batch_a: utcq_traj::Dataset, batch_b: utcq_traj::Dataset)
/// #         -> Result<(), utcq_core::Error> {
/// use utcq_core::store::StoreBuilder;
/// use utcq_core::CompressParams;
///
/// let store = StoreBuilder::new(net, CompressParams::default())
///     .ingest(&batch_a)?
///     .ingest(&batch_b)?
///     .finish()?;
/// # let _ = store; Ok(())
/// # }
/// ```
///
/// Each `ingest` compresses and indexes only the new batch: reference
/// selection is per-trajectory, and the new StIU postings merge into the
/// existing index in place. Ingest order does not change query answers
/// (only the interleaving of internal positions), which
/// `tests/store_roundtrip.rs` asserts. The finished store keeps
/// accepting batches through [`Store::ingest`] — the builder is the
/// offline bootstrap of the same per-trajectory path the live writer
/// runs.
pub struct StoreBuilder {
    net: Arc<RoadNetwork>,
    params: CompressParams,
    stiu_params: StiuParams,
    name: Option<String>,
    state: PartitionState,
    cache_bytes: usize,
    durability: Durability,
}

impl StoreBuilder {
    /// A builder with default index parameters.
    pub fn new(net: Arc<RoadNetwork>, params: CompressParams) -> Self {
        let state = PartitionState::new(&net, params);
        Self {
            net,
            params,
            stiu_params: StiuParams::default(),
            name: None,
            state,
            cache_bytes: DEFAULT_CACHE_BYTES,
            durability: Durability::Off,
        }
    }

    /// Sets the durability mode of the finished store: with
    /// [`Durability::Wal`], [`Store::ingest`] appends every accepted
    /// batch to the log before publishing, and any batches already in
    /// the log file are replayed on top of the built state by
    /// [`finish`](Self::finish).
    pub fn durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    /// Overrides the decode-cache byte budget of the finished store
    /// (default [`DEFAULT_CACHE_BYTES`]; `0` disables caching).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Overrides the StIU index parameters. Must be called before the
    /// first [`ingest`](Self::ingest); afterwards the grid is already
    /// fixed and the call is ignored.
    pub fn stiu_params(mut self, p: StiuParams) -> Self {
        if self.state.stiu.is_none() {
            self.stiu_params = p;
        }
        self
    }

    /// Overrides the dataset label (defaults to the first batch's name).
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Compresses and indexes one batch of trajectories, appending to
    /// whatever was ingested before. Only the new cohort is processed.
    pub fn ingest(mut self, batch: &Dataset) -> Result<Self, Error> {
        self.check_batch(batch)?;
        for tu in &batch.trajectories {
            self.ingest_traj(tu)?;
        }
        Ok(self)
    }

    /// Validates a batch's metadata against the builder's configuration
    /// and adopts its name if none is set yet. Shared with the sharded
    /// builder, which routes the batch's trajectories individually.
    pub(crate) fn check_batch(&mut self, batch: &Dataset) -> Result<(), Error> {
        if batch.default_interval != self.params.default_interval {
            return Err(Error::IntervalMismatch {
                expected: self.params.default_interval,
                got: batch.default_interval,
            });
        }
        if self.name.is_none() && !batch.name.is_empty() {
            self.name = Some(batch.name.clone());
        }
        Ok(())
    }

    /// Compresses and indexes a single trajectory — the per-item step of
    /// [`ingest`](Self::ingest), also driven directly by
    /// [`crate::shard::ShardedStoreBuilder`] so routing a batch across
    /// shards never copies trajectory payloads.
    pub(crate) fn ingest_traj(&mut self, tu: &UncertainTrajectory) -> Result<(), Error> {
        self.state.ingest_traj(&self.net, self.stiu_params, tu)
    }

    /// Whether any trajectory has been ingested yet.
    pub(crate) fn has_ingested(&self) -> bool {
        self.state.has_ingested()
    }

    /// Converts this (still empty) builder into a sharded builder that
    /// routes every ingested trajectory to one of `n_shards` partitions
    /// according to `policy`. The compression parameters, StIU
    /// parameters and dataset name carry over; the decode-cache budget
    /// becomes the *total* across shards (each shard gets an equal
    /// slice, matching [`crate::shard::ShardedStore::set_cache_bytes`]).
    ///
    /// Must be called before the first [`ingest`](Self::ingest) — once a
    /// trajectory is compressed into the single-store layout it cannot
    /// be re-routed, so a late call fails with [`Error::ShardConfig`].
    pub fn shard_by(
        self,
        policy: std::sync::Arc<dyn crate::shard::ShardPolicy>,
        n_shards: u32,
    ) -> Result<crate::shard::ShardedStoreBuilder, Error> {
        if self.has_ingested() {
            return Err(Error::ShardConfig("shard_by after the first ingest"));
        }
        let b = crate::shard::ShardedStoreBuilder::new(self.net, self.params, policy, n_shards)?
            .stiu_params(self.stiu_params)
            .cache_bytes(self.cache_bytes)
            .durability(self.durability);
        Ok(match self.name {
            Some(n) => b.name(&n),
            None => b,
        })
    }

    /// Finalizes the store, attaching the configured write-ahead log
    /// (if any) and replaying whatever batches it already holds.
    pub fn finish(self) -> Result<Store, Error> {
        let mut state = self.state;
        state.cds.name = self.name.unwrap_or_default();
        let store = Store::from_state(self.net, state, self.stiu_params, self.cache_bytes);
        if let Durability::Wal(cfg) = self.durability {
            store.attach_wal(cfg)?;
        }
        Ok(store)
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Store")
            .field("name", &snap.compressed().name)
            .field("epoch", &snap.epoch())
            .field("trajectories", &snap.len())
            .field("vertices", &self.net.vertex_count())
            .field("edges", &self.net.edge_count())
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Compresses a dataset and builds its index in one step —
    /// equivalent to a single-batch [`StoreBuilder`] run.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use utcq_core::{CompressParams, StiuParams, Store};
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 4, 7);
    /// let store = Store::build(
    ///     Arc::new(net),
    ///     &ds,
    ///     CompressParams::with_interval(ds.default_interval),
    ///     StiuParams::default(),
    /// )?;
    /// assert_eq!(store.len(), 4);
    /// assert!(store.ratios().total > 1.0);
    /// # Ok(()) }
    /// ```
    pub fn build(
        net: Arc<RoadNetwork>,
        ds: &Dataset,
        params: CompressParams,
        stiu_params: StiuParams,
    ) -> Result<Self, Error> {
        StoreBuilder::new(net, params)
            .stiu_params(stiu_params)
            .ingest(ds)?
            .finish()
    }

    /// Assembles a store handle over an initial (epoch 0) state.
    fn from_state(
        net: Arc<RoadNetwork>,
        state: PartitionState,
        stiu_params: StiuParams,
        cache_bytes: usize,
    ) -> Self {
        let cache = Arc::new(DecodeCache::with_budget(cache_bytes));
        let snap = state.into_snapshot(Arc::clone(&net), stiu_params, Arc::clone(&cache), 0);
        Self {
            net,
            cache,
            snap: Swap::new(Arc::new(snap)),
            next_epoch: AtomicU64::new(1),
            writer: Mutex::new(()),
            durability: Mutex::new(None),
        }
    }

    /// Opens a self-contained v2 container: network, dataset and index
    /// all come from the file — no side-channel arguments.
    ///
    /// A v1 container fails with [`Error::NeedsNetwork`]; open those with
    /// [`Store::open_v1`]. A sharded v3 container fails with
    /// [`Error::ShardedContainer`]; open those with
    /// [`crate::shard::ShardedStore::open`] (or let [`crate::Opened`]
    /// pick the shape).
    ///
    /// ```no_run
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// let store = utcq_core::Store::open("data.utcq")?;
    /// println!("{} trajectories", store.len());
    /// # Ok(()) }
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        let f = File::open(path)?;
        Self::read(&mut BufReader::new(f))
    }

    /// Reads a v2 container from an arbitrary reader.
    pub fn read(r: &mut impl Read) -> Result<Self, Error> {
        let (net, cds, stiu) = match crate::storage::load_v2(r) {
            Ok(parts) => parts,
            // Only a *valid* v1 container maps to the "supply a network"
            // guidance; garbage or unknown versions stay storage errors.
            Err(crate::storage::StorageError::LegacyVersion) => return Err(Error::NeedsNetwork),
            Err(crate::storage::StorageError::Sharded) => return Err(Error::ShardedContainer),
            Err(e) => return Err(e.into()),
        };
        Self::assemble(Arc::new(net), cds, stiu)
    }

    /// Opens a legacy v1 container against an externally supplied
    /// network — the compatibility path. The StIU index is not part of
    /// v1 containers, so it is rebuilt from the (lossily) decompressed
    /// trajectories; the structural components that index construction
    /// reads (edge sequences, time sequences) decompress exactly, so the
    /// rebuilt index matches one built at compression time.
    ///
    /// ```no_run
    /// use std::sync::Arc;
    /// use utcq_core::{StiuParams, Store};
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// // v1 files carry no network; supply the one they were built on.
    /// let net = utcq_datagen::generate_network(&utcq_datagen::profile::tiny(), 1);
    /// let store = Store::open_v1("legacy.utcq", Arc::new(net), StiuParams::default())?;
    /// # let _ = store; Ok(()) }
    /// ```
    pub fn open_v1(
        path: impl AsRef<Path>,
        net: Arc<RoadNetwork>,
        stiu_params: StiuParams,
    ) -> Result<Self, Error> {
        let f = File::open(path)?;
        let cds = crate::storage::load(&mut BufReader::new(f))?;
        let expect = edge_number_width(net.max_out_degree());
        if cds.w_e != expect {
            return Err(Error::NetworkMismatch {
                expected: cds.w_e,
                got: expect,
            });
        }
        let ds = crate::decompress::decompress_dataset(&net, &cds)?;
        let stiu = crate::stiu::build(&net, &ds, &cds, stiu_params);
        Self::assemble(net, cds, stiu)
    }

    /// Persists the current snapshot as a self-contained v2 container.
    /// Safe to call while other threads ingest: the write runs on the
    /// pinned snapshot, so the container is a consistent epoch.
    ///
    /// ```no_run
    /// # fn demo(store: utcq_core::Store) -> Result<(), utcq_core::Error> {
    /// store.save("data.utcq")?;
    /// let reopened = utcq_core::Store::open("data.utcq")?;
    /// assert_eq!(reopened.len(), store.len());
    /// # Ok(()) }
    /// ```
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        crate::wal::atomic_write(path.as_ref(), |w| self.write(w))
    }

    /// Writes the current snapshot's v2 container to an arbitrary writer.
    pub fn write(&self, w: &mut impl Write) -> Result<(), Error> {
        self.snapshot().write(w)
    }

    /// Assembles a store from parts, validating cross-references and
    /// building the per-trajectory query plans. Also the per-shard
    /// assembly step of [`crate::shard::ShardedStore::read`].
    pub(crate) fn assemble(
        net: Arc<RoadNetwork>,
        cds: CompressedDataset,
        stiu: Stiu,
    ) -> Result<Self, Error> {
        let (id_to_idx, plans) = Self::validate_parts(&cds, &stiu)?;
        Ok(Self::from_validated(net, cds, stiu, id_to_idx, plans))
    }

    /// The validating (and expensive) half of [`Store::assemble`]:
    /// cross-reference checks plus query-plan construction. Split out so
    /// the parallel sharded open can run it per shard on the work queue.
    pub(crate) fn validate_parts(
        cds: &CompressedDataset,
        stiu: &Stiu,
    ) -> Result<(SharedIdMap, ChunkedVec<TrajPlan>), Error> {
        if stiu.trajs.len() != cds.trajectories.len() {
            return Err(Error::CorruptStore("index/dataset trajectory counts"));
        }
        let mut id_to_idx = SharedIdMap::new();
        for (i, ct) in cds.trajectories.iter().enumerate() {
            if id_to_idx.contains(ct.id) {
                return Err(Error::DuplicateTrajectory(ct.id));
            }
            id_to_idx.insert(ct.id, i as u32);
        }
        let plans = crate::plan::build_plans(&cds.trajectories, &cds.params.p_codec())?;
        Ok((id_to_idx, ChunkedVec::from_vec(plans)))
    }

    /// Wraps already-validated parts into a store handle — the cheap
    /// half of [`Store::assemble`].
    pub(crate) fn from_validated(
        net: Arc<RoadNetwork>,
        cds: CompressedDataset,
        stiu: Stiu,
        id_to_idx: SharedIdMap,
        plans: ChunkedVec<TrajPlan>,
    ) -> Self {
        let stiu_params = stiu.params;
        let state = PartitionState {
            cds,
            stiu: Some(stiu),
            id_to_idx,
            plans,
        };
        Self::from_state(net, state, stiu_params, DEFAULT_CACHE_BYTES)
    }

    /// Pins the current epoch: the returned [`Snapshot`] is a consistent
    /// read view that concurrent [`Store::ingest`] calls cannot change.
    /// Hold it across a multi-page walk for stable answers, or hand it
    /// to [`Snapshot::save`] for a live checkpoint.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snap.load()
    }

    /// Compresses, indexes and **publishes** one batch concurrently with
    /// queries. The batch is processed against a private clone of the
    /// current snapshot — queries keep answering from the epoch they
    /// pinned — and becomes visible atomically as the next epoch.
    /// Writers serialize on an internal lock; a failed batch publishes
    /// nothing (all-or-nothing per batch).
    ///
    /// The published state is byte-identical to an offline
    /// [`StoreBuilder`] run over the same batches in the same order.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use utcq_core::{CompressParams, StiuParams, Store};
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// # let (net, mut ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 6, 7);
    /// # let mut late = ds.clone();
    /// # late.trajectories = ds.trajectories.split_off(3);
    /// let store = Store::build(Arc::new(net), &ds,
    ///     CompressParams::with_interval(ds.default_interval), StiuParams::default())?;
    /// let report = store.ingest(&late)?;     // live: no rebuild, no restart
    /// assert_eq!(report.ingested, 3);
    /// assert_eq!(report.total, 6);
    /// assert_eq!(report.epoch, 1);
    /// # Ok(()) }
    /// ```
    pub fn ingest(&self, batch: &Dataset) -> Result<IngestReport, Error> {
        let tus: Vec<&UncertainTrajectory> = batch.trajectories.iter().collect();
        self.ingest_trajs(batch.default_interval, &batch.name, &tus)
    }

    /// The by-reference ingest step shared with the sharded facade (so
    /// routing a batch across shards never copies trajectory payloads).
    pub(crate) fn ingest_trajs(
        &self,
        default_interval: i64,
        name: &str,
        tus: &[&UncertainTrajectory],
    ) -> Result<IngestReport, Error> {
        // A panic mid-batch leaves only a discarded private clone, so a
        // poisoned writer lock is safe to adopt.
        let _writer = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        self.ingest_trajs_locked(default_interval, name, tus)
    }

    /// [`Store::ingest_trajs`] with the writer lock already held — the
    /// WAL replay path of [`Store::attach_wal`] drives this directly.
    fn ingest_trajs_locked(
        &self,
        default_interval: i64,
        name: &str,
        tus: &[&UncertainTrajectory],
    ) -> Result<IngestReport, Error> {
        match self.prepare_trajs(default_interval, name, tus)? {
            None => {
                let cur = self.snap.load();
                Ok(IngestReport {
                    ingested: 0,
                    total: cur.len(),
                    epoch: cur.epoch(),
                })
            }
            Some(snap) => {
                let report = IngestReport {
                    ingested: tus.len(),
                    total: snap.len(),
                    epoch: snap.epoch(),
                };
                if let Err(e) = self.wal_append(snap.epoch(), default_interval, name, tus) {
                    // Nothing published: roll the epoch allocation back
                    // so the log and the epoch sequence stay gap-free.
                    self.next_epoch.fetch_sub(1, Ordering::Relaxed);
                    return Err(e);
                }
                self.snap.store(snap);
                Ok(report)
            }
        }
    }

    /// Adopts the durability slot even after a writer panic: the sidecar
    /// is only ever mutated append-wise, and an interrupted append shows
    /// up as a torn tail on the next open, not as broken memory state.
    fn wal_lock(&self) -> std::sync::MutexGuard<'_, Option<Sidecar>> {
        match self.durability.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Logs a publishing batch. No-op without an attached WAL. Called
    /// under the writer lock, *before* the snapshot swap — the record
    /// must be on disk (per the fsync policy) before readers can see
    /// the batch.
    fn wal_append(
        &self,
        epoch: u64,
        default_interval: i64,
        name: &str,
        tus: &[&UncertainTrajectory],
    ) -> Result<(), Error> {
        let mut guard = self.wal_lock();
        let Some(sc) = guard.as_mut() else {
            return Ok(());
        };
        sc.append_live(wal::Record {
            epoch,
            name: name.to_string(),
            default_interval,
            trajectories: tus.iter().map(|t| (*t).clone()).collect(),
        })
    }

    /// Opens a v2 container with a write-ahead log sidecar: any batches
    /// in the log are replayed on top of the container (byte-identical
    /// to having ingested them live), a torn final record is truncated
    /// away, and subsequent [`Store::ingest`] calls append to the log
    /// before publishing. The container path becomes the checkpoint
    /// target unless `cfg` names another.
    pub fn open_durable(path: impl AsRef<Path>, cfg: WalConfig) -> Result<Self, Error> {
        let path = path.as_ref();
        let store = Self::open(path)?;
        let mut cfg = cfg;
        if cfg.checkpoint_to.is_none() {
            cfg.checkpoint_to = Some(path.to_path_buf());
        }
        store.attach_wal(cfg)?;
        Ok(store)
    }

    /// Attaches a write-ahead log to a live store, replaying any records
    /// already in the file through the normal ingest path. Returns the
    /// number of replayed batches.
    ///
    /// Replay tolerates a checkpoint that crashed between the container
    /// save and the log truncation: a prefix of records whose
    /// trajectories are all already present is skipped and the log is
    /// rewritten without it (completing the interrupted truncation).
    /// Anything else that disagrees with the container is corruption.
    pub fn attach_wal(&self, cfg: WalConfig) -> Result<usize, Error> {
        // Same order as every writer: writer lock, then the wal slot.
        let _writer = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if self.wal_lock().is_some() {
            return Err(Error::CorruptStore("a wal is already attached"));
        }
        let (wal, records) = wal::Wal::open(&cfg)?;
        let mut sc = Sidecar::new(wal, &cfg);
        let mut skipped = 0u64;
        let mut applied: Vec<wal::Record> = Vec::new();
        for (expect, rec) in (1u64..).zip(records) {
            if rec.epoch != expect {
                return Err(Error::CorruptStore("wal record epochs are not sequential"));
            }
            let all_present = !rec.trajectories.is_empty() && {
                let snap = self.snap.load();
                rec.trajectories
                    .iter()
                    .all(|t| snap.traj_index(t.id).is_some())
            };
            if all_present {
                if !applied.is_empty() {
                    return Err(Error::CorruptStore("wal batch overlaps the container"));
                }
                skipped += 1;
                continue;
            }
            let tus: Vec<&UncertainTrajectory> = rec.trajectories.iter().collect();
            let report = self.ingest_trajs_locked(rec.default_interval, &rec.name, &tus)?;
            let live = rec.epoch - skipped;
            if report.epoch != live {
                // A no-op replay (name already adopted by the saved
                // container) in the skipped prefix; anything past an
                // applied record must line up exactly.
                if report.ingested == 0 && applied.is_empty() {
                    skipped += 1;
                    continue;
                }
                return Err(Error::CorruptStore(
                    "wal replay produced an unexpected epoch",
                ));
            }
            applied.push(wal::Record { epoch: live, ..rec });
        }
        if skipped > 0 {
            // Finish the interrupted checkpoint: drop the absorbed
            // prefix from disk and renumber the survivors.
            sc.wal.truncate()?;
            for rec in &applied {
                sc.wal.append(rec)?;
            }
        }
        let n = applied.len();
        for rec in applied {
            sc.push_feed(rec);
        }
        *self.wal_lock() = Some(sc);
        Ok(n)
    }

    /// Crash-safe checkpoint: saves the current snapshot to the recorded
    /// checkpoint target (tmp file + rename + directory fsync), then
    /// truncates the log — after which a reopen replays from the fresh
    /// container alone. Returns `Ok(None)` when no WAL (or no target
    /// path) is attached. Serializes with writers; queries never block.
    pub fn checkpoint(&self) -> Result<Option<CheckpointReport>, Error> {
        let _writer = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let snap = self.snap.load();
        let mut guard = self.wal_lock();
        let Some(sc) = guard.as_mut() else {
            return Ok(None);
        };
        let Some(target) = sc.checkpoint_to.clone() else {
            return Ok(None);
        };
        let log_bytes = sc.wal.len_bytes();
        wal::atomic_write(&target, |w| snap.write(w))?;
        sc.checkpointed(snap.epoch())?;
        Ok(Some(CheckpointReport {
            epoch: snap.epoch(),
            log_bytes,
        }))
    }

    /// Current size of the attached log in bytes; `None` without a WAL.
    pub fn wal_bytes(&self) -> Option<u64> {
        self.wal_lock().as_ref().map(|sc| sc.wal.len_bytes())
    }

    /// Batches published after epoch `from` (capped at `max`), from the
    /// in-memory feed of the attached WAL; `None` without a WAL. Serves
    /// the `tail` wire op.
    pub fn wal_tail(&self, from: u64, max: usize) -> Option<TailRead> {
        let current = self.snap.load().epoch();
        self.wal_lock()
            .as_ref()
            .map(|sc| sc.records_since(from, max, current))
    }

    /// If the attached WAL recorded exactly this batch (trajectories
    /// compared in full), its publish epoch and size — lets the serve
    /// layer answer a re-sent batch idempotently instead of failing on
    /// duplicates.
    pub fn wal_dedup(&self, tus: &[UncertainTrajectory]) -> Option<(u64, usize)> {
        self.wal_lock().as_ref().and_then(|sc| sc.dedup_epoch(tus))
    }

    /// Builds — without publishing — the snapshot that appending `tus`
    /// would produce; `Ok(None)` when nothing would change (empty batch
    /// with no name to adopt). The caller must already serialize
    /// writers (the store's own lock, or the sharded facade's), and
    /// publishes the returned snapshot with [`Store::publish_snapshot`].
    /// Splitting prepare from publish is what makes a sharded batch
    /// all-or-nothing across shards.
    pub(crate) fn prepare_trajs(
        &self,
        default_interval: i64,
        name: &str,
        tus: &[&UncertainTrajectory],
    ) -> Result<Option<Arc<Snapshot>>, Error> {
        crate::hooks::point("store.prepare");
        let cur = self.snap.load();
        let params = cur.compressed().params;
        if default_interval != params.default_interval {
            return Err(Error::IntervalMismatch {
                expected: params.default_interval,
                got: default_interval,
            });
        }
        // Match StoreBuilder's name adoption (check_batch adopts from
        // every batch, even an empty one) so live and offline builds
        // serialize identically in all cases.
        let adopt_name = cur.compressed().name.is_empty() && !name.is_empty();
        if tus.is_empty() && !adopt_name {
            return Ok(None);
        }
        let stiu_params = cur.stiu().params;
        let mut state = PartitionState::from_snapshot(&cur);
        if adopt_name {
            state.cds.name = name.to_string();
        }
        for tu in tus {
            state.ingest_traj(&self.net, stiu_params, tu)?;
        }
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        Ok(Some(Arc::new(state.into_snapshot(
            Arc::clone(&self.net),
            stiu_params,
            Arc::clone(&self.cache),
            epoch,
        ))))
    }

    /// Publishes a snapshot prepared by [`Store::prepare_trajs`] — a
    /// single pointer swap.
    pub(crate) fn publish_snapshot(&self, snap: Arc<Snapshot>) {
        self.snap.store(snap);
    }

    /// The road network the store owns (identical across epochs).
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// The compression parameters the store was built with.
    pub fn params(&self) -> CompressParams {
        self.snapshot().compressed().params
    }

    /// Component-wise and total compression ratios of the current
    /// snapshot.
    pub fn ratios(&self) -> Ratios {
        self.snapshot().ratios()
    }

    /// Number of trajectories currently queryable.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the store holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Looks up a trajectory's position by id (in the current epoch).
    pub fn traj_index(&self, id: u64) -> Option<u32> {
        self.snapshot().traj_index(id)
    }

    /// Decodes the full time sequence of the trajectory at position `j`
    /// (memoized in the decode cache).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use utcq_core::{CompressParams, StiuParams, Store};
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// # let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 3, 7);
    /// # let store = Store::build(Arc::new(net), &ds,
    /// #     CompressParams::with_interval(ds.default_interval), StiuParams::default())?;
    /// // Positions come from `traj_index`; ids from ingest order.
    /// let j = store.traj_index(0).unwrap();
    /// let times = store.decode_times(j)?;
    /// assert!(times.windows(2).all(|w| w[0] <= w[1]));
    /// # Ok(()) }
    /// ```
    pub fn decode_times(&self, j: u32) -> Result<Arc<Vec<i64>>, Error> {
        self.snapshot().decode_times(j)
    }

    /// Hit/miss/eviction counters and footprint of the decode cache.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use utcq_core::{CompressParams, PageRequest, StiuParams, Store};
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// # let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 3, 7);
    /// # let store = Store::build(Arc::new(net), &ds,
    /// #     CompressParams::with_interval(ds.default_interval), StiuParams::default())?;
    /// let t0 = store.decode_times(0)?[0];
    /// store.where_query(0, t0, 0.0, PageRequest::default())?; // cold: misses
    /// store.where_query(0, t0, 0.0, PageRequest::default())?; // warm: hits
    /// let stats = store.cache_stats();
    /// assert!(stats.hits > 0 && stats.misses > 0);
    /// println!("{}", stats.render());
    /// # Ok(()) }
    /// ```
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The decode cache's byte budget (`0` = disabled).
    pub fn cache_bytes(&self) -> usize {
        self.cache.budget()
    }

    /// Reconfigures the decode-cache byte budget at runtime, evicting
    /// down to the new limit immediately (`0` disables caching).
    ///
    /// ```
    /// # fn demo(store: &utcq_core::Store) {
    /// store.set_cache_bytes(16 * 1024 * 1024); // 16 MiB
    /// assert_eq!(store.cache_bytes(), 16 * 1024 * 1024);
    /// store.set_cache_bytes(0); // disable caching entirely
    /// # }
    /// ```
    pub fn set_cache_bytes(&self, bytes: usize) {
        self.cache.set_budget(bytes);
    }

    /// Drops every cached decode (the budget and counters survive).
    /// Benchmarks use this to measure cold-cache latencies.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Probabilistic **where** query (Definition 10): the locations of
    /// `traj_id`'s instances with probability ≥ `alpha` at time `t`.
    ///
    /// Unknown trajectory ids and out-of-span times yield an empty page,
    /// matching the paper's query semantics (the answer set is empty).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use utcq_core::{CompressParams, PageRequest, StiuParams, Store};
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// # let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 3, 7);
    /// # let store = Store::build(Arc::new(net), &ds,
    /// #     CompressParams::with_interval(ds.default_interval), StiuParams::default())?;
    /// let t0 = store.decode_times(store.traj_index(0).unwrap())?[0];
    /// // Walk the full answer two hits per page.
    /// let mut req = PageRequest::first(2);
    /// loop {
    ///     let page = store.where_query(0, t0, 0.0, req)?;
    ///     for hit in &page.items {
    ///         println!("instance {} (p={}) at {:?}", hit.instance, hit.prob, hit.loc);
    ///     }
    ///     match page.next_cursor {
    ///         Some(c) => req = PageRequest::after(c, 2),
    ///         None => break,
    ///     }
    /// }
    /// # Ok(()) }
    /// ```
    pub fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        self.snapshot().where_query(traj_id, t, alpha, page)
    }

    /// Probabilistic **when** query (Definition 11): the times at which
    /// `traj_id`'s instances with probability ≥ `alpha` pass `⟨edge, rd⟩`.
    ///
    /// ```no_run
    /// use utcq_core::PageRequest;
    /// use utcq_network::EdgeId;
    /// # fn demo(store: &utcq_core::Store) -> Result<(), utcq_core::Error> {
    /// // When does trajectory 7 pass the midpoint of edge 117?
    /// let page = store.when_query(7, EdgeId(117), 0.5, 0.25, PageRequest::first(64))?;
    /// for hit in &page.items {
    ///     println!("instance {} passes at t={}s", hit.instance, hit.time);
    /// }
    /// # Ok(()) }
    /// ```
    pub fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        self.snapshot().when_query(traj_id, edge, rd, alpha, page)
    }

    /// Probabilistic **range** query (Definition 12): ids of trajectories
    /// inside `re` at `tq` with accumulated probability ≥ `alpha`,
    /// ascending. Pagination is keyset-style over the sorted ids, so
    /// pages stay consistent under concurrent reads (and, since ingest
    /// only appends, under concurrent writes).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use utcq_core::{CompressParams, PageRequest, StiuParams, Store};
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// # let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 3, 7);
    /// # let store = Store::build(Arc::new(net), &ds,
    /// #     CompressParams::with_interval(ds.default_interval), StiuParams::default())?;
    /// let tq = store.decode_times(0)?[0];
    /// let everywhere = store.network().bounding_rect();
    /// let page = store.range_query(&everywhere, tq, 0.2, PageRequest::all())?;
    /// assert!(page.items.windows(2).all(|w| w[0] < w[1]), "ids ascend");
    /// # Ok(()) }
    /// ```
    pub fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        self.snapshot().range_query(re, tq, alpha, page)
    }

    /// Evaluates a batch of **range** queries in parallel across the
    /// available cores, answers unpaginated and in input order. The
    /// whole batch runs on one pinned snapshot — no cloning, no
    /// recompression — and all workers share one decode cache, so
    /// overlapping queries decode each artifact once.
    ///
    /// Workers pull query indices from a shared atomic counter rather
    /// than fixed chunks: a skewed batch (a few expensive queries amid
    /// many cheap ones) keeps every thread busy until the queue drains.
    ///
    /// ```no_run
    /// use utcq_core::RangeQuery;
    /// # fn demo(store: &utcq_core::Store, batch: Vec<RangeQuery>) -> Result<(), utcq_core::Error> {
    /// let answers = store.par_range_query(&batch)?; // one Vec<id> per query, input order
    /// assert_eq!(answers.len(), batch.len());
    /// # Ok(()) }
    /// ```
    pub fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        self.snapshot().par_range_query(queries)
    }
}

impl crate::query::QueryTarget for Store {
    fn len(&self) -> usize {
        Store::len(self)
    }

    fn network(&self) -> &Arc<RoadNetwork> {
        Store::network(self)
    }

    fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        Store::where_query(self, traj_id, t, alpha, page)
    }

    fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        Store::when_query(self, traj_id, edge, rd, alpha, page)
    }

    fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        Store::range_query(self, re, tq, alpha, page)
    }

    fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        Store::par_range_query(self, queries)
    }

    fn cache_stats(&self) -> CacheStats {
        Store::cache_stats(self)
    }

    fn set_cache_bytes(&self, bytes: usize) {
        Store::set_cache_bytes(self, bytes)
    }

    fn clear_cache(&self) {
        Store::clear_cache(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    fn paper_store(fx: &paper_fixture::PaperFixture) -> Store {
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        Store::build(
            Arc::new(fx.example.net.clone()),
            &ds,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap()
    }

    #[test]
    fn store_is_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Store>();
        assert_send_sync::<StoreBuilder>();
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn example3_where_on_compressed() {
        // where(Tu¹, 5:21:25, 0.25) → ⟨v6→v7, 150⟩ from Tu¹₁ only.
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .where_query(1, paper_fixture::hms(5, 21, 25), 0.25, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].instance, 0);
        assert_eq!(hits[0].loc.edge, fx.example.edge(6, 7));
        assert!((hits[0].loc.ndist - 150.0).abs() < 1.6); // ηD on a 200 m edge
    }

    #[test]
    fn where_alpha_zero_returns_all() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .where_query(1, paper_fixture::hms(5, 5, 0), 0.0, PageRequest::all())
            .unwrap();
        assert_eq!(hits.items.len(), 3);
        assert!(!hits.has_more);
        assert_eq!(hits.next_cursor, None);
    }

    #[test]
    fn where_pagination_walks_the_full_answer() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let t = paper_fixture::hms(5, 5, 0);
        let all = store
            .where_query(1, t, 0.0, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(all.len(), 3);

        let mut walked = Vec::new();
        let mut req = PageRequest::first(2);
        loop {
            let page = store.where_query(1, t, 0.0, req).unwrap();
            let done = !page.has_more;
            if page.has_more {
                assert_eq!(page.items.len(), 2);
                req = PageRequest::after(page.next_cursor.unwrap(), 2);
            }
            walked.extend(page.items);
            if done {
                break;
            }
        }
        assert_eq!(walked, all);
    }

    #[test]
    fn where_outside_span_is_empty() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        for t in [paper_fixture::hms(4, 0, 0), paper_fixture::hms(6, 0, 0)] {
            let page = store.where_query(1, t, 0.0, PageRequest::all()).unwrap();
            assert!(page.items.is_empty() && !page.has_more);
        }
        assert!(store
            .where_query(99, 0, 0.0, PageRequest::all())
            .unwrap()
            .items
            .is_empty());
    }

    #[test]
    fn example3_when_on_compressed() {
        // when(Tu¹, ⟨v6→v7, 0.75⟩, 0.25) → 5:21:25 from Tu¹₁ (and Tu¹₂?
        // both traverse (v6→v7), but Tu¹₂.p = 0.2 < 0.25).
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .when_query(1, fx.example.edge(6, 7), 0.75, 0.25, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].instance, 0);
        let want = paper_fixture::hms(5, 21, 25) as f64;
        assert!((hits[0].time - want).abs() < 3.5, "time {}", hits[0].time);
    }

    #[test]
    fn when_low_alpha_includes_nonreferences() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let hits = store
            .when_query(1, fx.example.edge(6, 7), 0.75, 0.01, PageRequest::all())
            .unwrap();
        // All three instances traverse (v6→v7).
        assert_eq!(hits.items.len(), 3);
    }

    #[test]
    fn when_region_miss_is_empty_and_negatively_cached() {
        // A location on the stub edges is never visited.
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let e49 = fx
            .example
            .net
            .find_edge(fx.example.vertex(4), utcq_network::VertexId(10))
            .expect("stub edge");
        let hits = store
            .when_query(1, e49, 0.5, 0.0, PageRequest::all())
            .unwrap();
        assert!(hits.items.is_empty());
        let after_first = store.cache_stats();
        assert_eq!(after_first.negative_entries, 1, "{after_first:?}");
        // The repeat answers from the negative entry.
        let hits = store
            .when_query(1, e49, 0.5, 0.0, PageRequest::all())
            .unwrap();
        assert!(hits.items.is_empty());
        let after_second = store.cache_stats();
        assert_eq!(after_second.negative_hits, after_first.negative_hits + 1);
    }

    #[test]
    fn example4_range_queries() {
        // range over a region covering the whole corridor at 5:05:25
        // with α = 0.5 → Tu¹; a far-away region → ∅.
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let t = paper_fixture::hms(5, 5, 25);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert_eq!(
            store
                .range_query(&all, t, 0.5, PageRequest::all())
                .unwrap()
                .into_items(),
            vec![1]
        );
        let far = Rect::new(100.0, 100.0, 120.0, 120.0);
        assert!(store
            .range_query(&far, t, 0.5, PageRequest::all())
            .unwrap()
            .items
            .is_empty());
    }

    #[test]
    fn range_alpha_prunes() {
        // At 5:09:00 a region around the v10 detour only holds Tu¹₂
        // (p = 0.2).
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let t = paper_fixture::hms(5, 9, 0);
        let detour_region = Rect::new(10.0, 4.0, 22.0, 12.0);
        let hit = store
            .range_query(&detour_region, t, 0.1, PageRequest::all())
            .unwrap();
        let miss = store
            .range_query(&detour_region, t, 0.5, PageRequest::all())
            .unwrap();
        assert_eq!(hit.items, vec![1]);
        assert!(miss.items.is_empty());
    }

    #[test]
    fn range_outside_time_span() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert!(store
            .range_query(&all, paper_fixture::hms(7, 0, 0), 0.1, PageRequest::all())
            .unwrap()
            .items
            .is_empty());
    }

    #[test]
    fn par_range_matches_sequential() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let t = paper_fixture::hms(5, 5, 25);
        let queries: Vec<RangeQuery> = (0..8)
            .map(|i| RangeQuery {
                re: Rect::new(-10.0, -10.0, 20.0 + 10.0 * i as f64, 10.0),
                tq: t,
                alpha: 0.3,
            })
            .collect();
        let par = store.par_range_query(&queries).unwrap();
        for (q, got) in queries.iter().zip(&par) {
            let want = store
                .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                .unwrap()
                .into_items();
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn duplicate_ingest_is_rejected() {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let net = Arc::new(fx.example.net.clone());
        let b = StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .ingest(&ds)
        .unwrap();
        assert!(matches!(b.ingest(&ds), Err(Error::DuplicateTrajectory(1))));
    }

    #[test]
    fn live_duplicate_ingest_publishes_nothing() {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        let store = paper_store(&fx);
        let before = store.snapshot();
        assert!(matches!(
            store.ingest(&ds),
            Err(Error::DuplicateTrajectory(1))
        ));
        let after = store.snapshot();
        assert!(
            Arc::ptr_eq(&before, &after),
            "failed batch must not publish"
        );
        assert_eq!(after.epoch(), 0);
    }

    #[test]
    fn interval_mismatch_is_rejected() {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL + 1,
            trajectories: vec![fx.tu.clone()],
        };
        let net = Arc::new(fx.example.net.clone());
        let r = StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .ingest(&ds);
        assert!(matches!(r, Err(Error::IntervalMismatch { .. })));
        // The live path enforces the same invariant.
        let store = paper_store(&fx);
        assert!(matches!(
            store.ingest(&ds),
            Err(Error::IntervalMismatch { .. })
        ));
    }

    #[test]
    fn empty_live_batch_keeps_the_epoch() {
        let fx = paper_fixture::build();
        let store = paper_store(&fx);
        let empty = Dataset {
            name: String::new(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: Vec::new(),
        };
        let report = store.ingest(&empty).unwrap();
        assert_eq!((report.ingested, report.total, report.epoch), (0, 1, 0));
        assert_eq!(store.snapshot().epoch(), 0, "no pointless publish");
    }

    #[test]
    fn empty_store_answers_empty() {
        let fx = paper_fixture::build();
        let net = Arc::new(fx.example.net.clone());
        let store = StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .finish()
        .unwrap();
        assert!(store.is_empty());
        assert!(store
            .where_query(1, 0, 0.0, PageRequest::all())
            .unwrap()
            .items
            .is_empty());
        let re = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(store
            .range_query(&re, 0, 0.0, PageRequest::all())
            .unwrap()
            .items
            .is_empty());
    }
}
