//! The single error type of the `utcq_core` public API.
//!
//! Every public fallible function in this crate returns
//! [`Result<_, Error>`](Error). The lower layers keep their specific
//! error types ([`CodecError`],
//! [`DecompressError`],
//! [`StorageError`], [`std::io::Error`]) and
//! `From` impls fold them into [`Error`] at the API boundary, so callers
//! handle one enum and `?` works across layers.

use std::io;

use utcq_bitio::CodecError;

use crate::decompress::DecompressError;
use crate::storage::StorageError;

/// Unified error for all public fallible operations in `utcq_core`.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A bit-level encode/decode failed.
    Codec(CodecError),
    /// Decompression failed (codec failure or a view that does not
    /// resolve against the road network).
    Decompress(DecompressError),
    /// A storage container could not be read or written.
    Storage(StorageError),
    /// Underlying I/O failure outside the container parser.
    Io(io::Error),
    /// A trajectory with this id was already ingested.
    DuplicateTrajectory(u64),
    /// A batch's default sample interval disagrees with the store's
    /// compression parameters.
    IntervalMismatch {
        /// The store's `CompressParams::default_interval`.
        expected: i64,
        /// The batch's `Dataset::default_interval`.
        got: i64,
    },
    /// A container was compressed against a network with a different
    /// outgoing-edge-number width than the one supplied.
    NetworkMismatch {
        /// Edge-number width recorded in the container.
        expected: u32,
        /// Edge-number width of the supplied network.
        got: u32,
    },
    /// The compressed payload or index is internally inconsistent (e.g. a
    /// non-reference pointing past the reference list). Carries a short
    /// static description of the invariant that failed.
    CorruptStore(&'static str),
    /// A v1 container was opened through [`crate::store::Store::open`],
    /// which requires the self-contained v2 format.
    NeedsNetwork,
    /// A sharded v3 container was opened through
    /// [`crate::store::Store::open`]; open it with
    /// [`crate::shard::ShardedStore::open`] instead.
    ShardedContainer,
    /// A page cursor was presented to a store other than the one that
    /// minted it (e.g. a sharded cursor whose shard tag does not match
    /// the shard that owns the queried trajectory).
    InvalidCursor,
    /// Invalid sharding configuration (zero shards, too many shards, or
    /// `shard_by` after the first ingest). Carries a short static
    /// description.
    ShardConfig(&'static str),
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Self {
        Error::Codec(e)
    }
}

impl From<DecompressError> for Error {
    fn from(e: DecompressError) -> Self {
        Error::Decompress(e)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Codec(e) => write!(f, "codec error: {e}"),
            Error::Decompress(e) => write!(f, "decompression error: {e}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::DuplicateTrajectory(id) => {
                write!(f, "trajectory {id} was already ingested")
            }
            Error::IntervalMismatch { expected, got } => write!(
                f,
                "batch default interval {got}s does not match the store's {expected}s"
            ),
            Error::NetworkMismatch { expected, got } => write!(
                f,
                "container edge width {expected} does not match the network's {got}"
            ),
            Error::CorruptStore(what) => write!(f, "corrupt store: {what}"),
            Error::NeedsNetwork => write!(
                f,
                "v1 container has no embedded network; open it with Store::open_v1"
            ),
            Error::ShardedContainer => {
                write!(f, "sharded v3 container; open it with ShardedStore::open")
            }
            Error::InvalidCursor => write!(
                f,
                "page cursor does not belong to this store (stale or foreign shard tag)"
            ),
            Error::ShardConfig(what) => write!(f, "invalid shard configuration: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Codec(e) => Some(e),
            Error::Decompress(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_fold_every_layer() {
        let c: Error = CodecError::WidthTooLarge(65).into();
        assert!(matches!(c, Error::Codec(_)));
        let d: Error = DecompressError::Codec(CodecError::Malformed("x")).into();
        assert!(matches!(d, Error::Decompress(_)));
        let s: Error = StorageError::BadHeader.into();
        assert!(matches!(s, Error::Storage(_)));
        let i: Error = io::Error::other("boom").into();
        assert!(matches!(i, Error::Io(_)));
    }

    #[test]
    fn displays_are_informative() {
        let e = Error::IntervalMismatch {
            expected: 10,
            got: 15,
        };
        let msg = e.to_string();
        assert!(msg.contains("15") && msg.contains("10"), "{msg}");
        assert!(Error::DuplicateTrajectory(7).to_string().contains('7'));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e: Error = CodecError::Malformed("prefix").into();
        assert!(e.source().is_some());
        assert!(Error::NeedsNetwork.source().is_none());
    }
}
