//! Sharding: N independent [`Store`] partitions behind one query facade.
//!
//! A [`ShardedStore`] owns a set of [`Store`]s and presents the exact
//! `where`/`when`/`range` + pagination surface of a single store (both
//! implement [`QueryTarget`]). Trajectories are routed to partitions at
//! ingest time by a pluggable [`ShardPolicy`] — by time interval
//! ([`ByTime`]) or by road-network region ([`ByRegion`]) — and each
//! partition is a complete, self-contained store: its own compressed
//! dataset, StIU index, query plans and decode cache. Ingest,
//! compression and queries therefore parallelize per shard instead of
//! serializing on one `CompressedDataset`.
//!
//! # Live ingest and the facade epoch
//!
//! Each shard is a live [`Store`] (see [`crate::snapshot`]): its read
//! state is an immutable epoch-swapped snapshot, so
//! [`ShardedStore::ingest`] routes a batch, compresses each sub-batch
//! on its owning shard (fanned out across shards on the shared
//! work-queue model — per-shard compression is the parallelism the
//! partitioning buys), and then publishes a fresh **facade state** (id
//! routing map + prebuilt range index) as the next facade epoch.
//! Queries never block on ingest: they pin the facade and the shard
//! snapshots they need and run entirely on frozen state. Publication
//! order is shards-first-then-facade, and ingest only appends, so a
//! pinned facade never references a position its shard snapshots lack.
//! A batch becomes visible atomically when the facade publishes.
//!
//! # Query execution
//!
//! * **where/when** target a single trajectory: the facade resolves the
//!   owning shard through its id map and delegates — a one-shard
//!   fan-out.
//! * **range** fans out to every shard for *candidates*
//!   (`(id, position)` pairs from each shard's interval index), merges
//!   them into one globally id-ascending sequence, and then evaluates
//!   candidates in that order against their owning shard's engine until
//!   the page limit fills. This reproduces the single store's evaluation
//!   order exactly, so answers and page boundaries are identical.
//! * **par_range_query** pulls whole queries from the same
//!   atomic-counter work queue the single store uses
//!   (`crate::query::par_run`); each worker fans out over shards
//!   *inside* its query, so sharding never multiplies thread pools.
//!
//! Merging moves hit values (`WhereHit`/`WhenHit`/`u64` ids) between
//! pages; decoded artifacts stay behind each shard's cache `Arc`s and
//! are never cloned across the merge.
//!
//! # Cursor encoding
//!
//! Cursors stay opaque `u64`s but are *global*:
//!
//! * **where/when** cursors encode `(shard, local_cursor)` — the owning
//!   shard in the high 16 bits, the shard-local offset cursor in the low
//!   48. A cursor presented to a store whose routing disagrees (or with
//!   a foreign shard tag) fails with [`Error::InvalidCursor`] instead of
//!   silently paginating wrong.
//! * **range** cursors are keyset-style — the last returned trajectory
//!   id, exactly as in the single store. They carry no shard tag, so
//!   range cursors are interchangeable between a [`Store`] and any
//!   [`ShardedStore`] over the same dataset.
//!
//! Routing of an already-ingested id never changes and ingest only
//! appends, so cursors minted before a live ingest stay valid after it.
//!
//! # Persistence
//!
//! [`ShardedStore::save`] writes a v3 container: a shard directory
//! (policy kind + parameter) followed by one embedded, fully
//! self-contained v2 container per shard (see [`crate::storage`]). The
//! shard snapshots are pinned under the writer lock, so a checkpoint
//! taken while batches stream in is always a batch-consistent cut.
//! [`ShardedStore::open`] reads v3 — deserializing the per-shard blobs
//! **in parallel** on the shared work queue — and also accepts a plain
//! v2 container as a single-shard store; the embedded network is
//! deserialized once and shared across shards behind one `Arc`.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use utcq_network::{EdgeId, Grid, Rect, RoadNetwork};
use utcq_traj::{Dataset, UncertainTrajectory};

use crate::bitmap::SegmentBitmap;
use crate::cache::CacheStats;
use crate::error::Error;
use crate::params::CompressParams;
use crate::query::{par_run, Page, PageRequest, QueryTarget, RangeQuery, WhenHit, WhereHit};
use crate::snapshot::{Snapshot, Swap};
use crate::stiu::StiuParams;
use crate::storage::{self, ShardDirectory, POLICY_CUSTOM, POLICY_REGION, POLICY_TIME};
use crate::store::{IngestReport, Store, StoreBuilder};
use crate::wal::{self, CheckpointReport, Durability, Sidecar, TailRead, WalConfig};

/// Maximum number of shards a store may have (the shard tag of a
/// where/when cursor is 16 bits).
pub const MAX_SHARDS: u32 = 1 << 16;

/// Total shard-payload bytes below which a "parallel" open runs
/// sequentially anyway — thread-spawn overhead exceeds the decode work
/// on tiny containers (the `open` bench measured a 0.93x "speedup"
/// there before this threshold existed).
pub const PARALLEL_OPEN_MIN_BYTES: u64 = 8 * 1024 * 1024;

/// Whether a parallel open would actually help: more than one shard
/// and at least [`PARALLEL_OPEN_MIN_BYTES`] of embedded payload.
pub fn parallel_open_effective(shard_count: usize, payload_bytes: u64) -> bool {
    shard_count > 1 && payload_bytes >= PARALLEL_OPEN_MIN_BYTES
}

/// Bits of a global where/when cursor holding the shard-local cursor.
const LOCAL_CURSOR_BITS: u32 = 48;
const LOCAL_CURSOR_MASK: u64 = (1 << LOCAL_CURSOR_BITS) - 1;

fn encode_cursor(shard: u32, local: u64) -> u64 {
    debug_assert!(local <= LOCAL_CURSOR_MASK, "local cursor overflows 48 bits");
    (u64::from(shard) << LOCAL_CURSOR_BITS) | (local & LOCAL_CURSOR_MASK)
}

fn decode_cursor(global: u64) -> (u32, u64) {
    (
        (global >> LOCAL_CURSOR_BITS) as u32,
        global & LOCAL_CURSOR_MASK,
    )
}

/// Routes trajectories to shards at ingest time.
///
/// A policy must be **deterministic** — the same trajectory must route
/// to the same shard on every call — because duplicate-id detection and
/// the facade's id map rely on a stable placement. Built-in policies
/// ([`ByTime`], [`ByRegion`]) also serialize into the v3 shard
/// directory; custom implementations are recorded as `custom` (the
/// container still opens and queries — but a reopened custom-policy
/// store cannot route new batches, so [`ShardedStore::ingest`] rejects
/// it).
pub trait ShardPolicy: Send + Sync {
    /// The shard (in `0..n_shards`) that should own `tu`.
    fn route(&self, net: &RoadNetwork, tu: &UncertainTrajectory, n_shards: u32) -> u32;

    /// The serializable spec of a built-in policy; `None` for custom
    /// policies.
    fn spec(&self) -> Option<ShardSpec> {
        None
    }
}

/// Serializable description of a built-in [`ShardPolicy`] — what the v3
/// shard directory records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// [`ByTime`] with the given bucket width in seconds.
    ByTime {
        /// Time-bucket width in seconds.
        interval_s: i64,
    },
    /// [`ByRegion`] with the given routing-grid dimension.
    ByRegion {
        /// Routing grid dimension (`grid_n × grid_n` cells).
        grid_n: u32,
    },
}

impl ShardSpec {
    /// Instantiates the policy this spec describes.
    ///
    /// ```
    /// use utcq_core::shard::ShardSpec;
    /// let policy = ShardSpec::ByTime { interval_s: 900 }.policy();
    /// assert_eq!(policy.spec(), Some(ShardSpec::ByTime { interval_s: 900 }));
    /// ```
    pub fn policy(self) -> Arc<dyn ShardPolicy> {
        match self {
            ShardSpec::ByTime { interval_s } => Arc::new(ByTime { interval_s }),
            ShardSpec::ByRegion { grid_n } => Arc::new(ByRegion { grid_n }),
        }
    }

    fn directory(spec: Option<ShardSpec>) -> ShardDirectory {
        match spec {
            Some(ShardSpec::ByTime { interval_s }) => ShardDirectory {
                kind: POLICY_TIME,
                param: interval_s,
            },
            Some(ShardSpec::ByRegion { grid_n }) => ShardDirectory {
                kind: POLICY_REGION,
                param: i64::from(grid_n),
            },
            None => ShardDirectory {
                kind: POLICY_CUSTOM,
                param: 0,
            },
        }
    }

    fn from_directory(dir: ShardDirectory) -> Option<ShardSpec> {
        match dir.kind {
            POLICY_TIME => Some(ShardSpec::ByTime {
                interval_s: dir.param.max(1),
            }),
            POLICY_REGION => Some(ShardSpec::ByRegion {
                grid_n: u32::try_from(dir.param).unwrap_or(1).max(1),
            }),
            _ => None,
        }
    }
}

/// Time-interval routing: trajectories whose first sample falls in the
/// same `interval_s`-second bucket land on the same shard; buckets
/// round-robin across shards, so contiguous time ranges spread evenly.
#[derive(Debug, Clone, Copy)]
pub struct ByTime {
    /// Bucket width in seconds (clamped to ≥ 1).
    pub interval_s: i64,
}

impl Default for ByTime {
    /// Hour-wide buckets.
    fn default() -> Self {
        Self { interval_s: 3600 }
    }
}

impl ShardPolicy for ByTime {
    fn route(&self, _net: &RoadNetwork, tu: &UncertainTrajectory, n_shards: u32) -> u32 {
        let t0 = tu.times.first().copied().unwrap_or(0);
        t0.div_euclid(self.interval_s.max(1))
            .rem_euclid(i64::from(n_shards)) as u32
    }

    fn spec(&self) -> Option<ShardSpec> {
        Some(ShardSpec::ByTime {
            interval_s: self.interval_s,
        })
    }
}

/// Region routing: a coarse `grid_n × grid_n` grid over the network's
/// bounding rectangle; a trajectory lands on the shard of the cell its
/// most probable instance starts in, so trajectories beginning in the
/// same area co-locate.
#[derive(Debug, Clone, Copy)]
pub struct ByRegion {
    /// Routing grid dimension (clamped to ≥ 1). Independent of the StIU
    /// grid — this one only routes.
    pub grid_n: u32,
}

impl Default for ByRegion {
    /// An 8 × 8 routing grid.
    fn default() -> Self {
        Self { grid_n: 8 }
    }
}

impl ShardPolicy for ByRegion {
    fn route(&self, net: &RoadNetwork, tu: &UncertainTrajectory, n_shards: u32) -> u32 {
        if tu.instances.is_empty() {
            return 0;
        }
        let grid = Grid::over_network(net, self.grid_n.max(1));
        let inst = tu.top_instance();
        let loc = inst.location(net, 0);
        let cell = grid.cell_of(net.point_on_edge(loc.edge, loc.ndist));
        cell.0 % n_shards
    }

    fn spec(&self) -> Option<ShardSpec> {
        Some(ShardSpec::ByRegion {
            grid_n: self.grid_n,
        })
    }
}

/// Incremental construction of a [`ShardedStore`] — the sharded
/// counterpart of [`StoreBuilder`], usually reached through
/// [`StoreBuilder::shard_by`].
///
/// Each [`ingest`](Self::ingest) routes the batch's trajectories
/// individually (no payload copies) to per-shard [`StoreBuilder`]s, so
/// only each trajectory's owning shard compresses and indexes it.
pub struct ShardedStoreBuilder {
    net: Arc<RoadNetwork>,
    policy: Arc<dyn ShardPolicy>,
    builders: Vec<StoreBuilder>,
    total_cache_bytes: usize,
    durability: Durability,
}

impl ShardedStoreBuilder {
    /// A sharded builder with `n_shards` partitions routed by `policy`.
    pub fn new(
        net: Arc<RoadNetwork>,
        params: CompressParams,
        policy: Arc<dyn ShardPolicy>,
        n_shards: u32,
    ) -> Result<Self, Error> {
        if n_shards == 0 {
            return Err(Error::ShardConfig("shard count must be at least 1"));
        }
        if n_shards > MAX_SHARDS {
            return Err(Error::ShardConfig("shard count exceeds 65536"));
        }
        let builders = (0..n_shards)
            .map(|_| StoreBuilder::new(net.clone(), params))
            .collect();
        let mut b = Self {
            net,
            policy,
            builders,
            total_cache_bytes: crate::cache::DEFAULT_CACHE_BYTES,
            durability: Durability::Off,
        };
        b.apply_cache_budget();
        Ok(b)
    }

    /// Sets the durability mode of the finished store — one
    /// facade-level log for the whole store, exactly as
    /// [`StoreBuilder::durability`] configures a single store.
    pub fn durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    fn apply_cache_budget(&mut self) {
        let per_shard = self.total_cache_bytes / self.builders.len();
        self.builders = std::mem::take(&mut self.builders)
            .into_iter()
            .map(|sb| sb.cache_bytes(per_shard))
            .collect();
    }

    /// Overrides the *total* decode-cache byte budget; each shard gets
    /// an equal slice (`0` disables caching everywhere).
    pub fn cache_bytes(mut self, total_bytes: usize) -> Self {
        self.total_cache_bytes = total_bytes;
        self.apply_cache_budget();
        self
    }

    /// Overrides the StIU parameters of every shard. Must be called
    /// before the first [`ingest`](Self::ingest) (as with
    /// [`StoreBuilder::stiu_params`]).
    pub fn stiu_params(mut self, p: StiuParams) -> Self {
        self.builders = std::mem::take(&mut self.builders)
            .into_iter()
            .map(|sb| sb.stiu_params(p))
            .collect();
        self
    }

    /// Overrides the dataset label (defaults to the first batch's name).
    pub fn name(mut self, name: &str) -> Self {
        self.builders = std::mem::take(&mut self.builders)
            .into_iter()
            .map(|sb| sb.name(name))
            .collect();
        self
    }

    /// Routes and ingests one batch: each trajectory is compressed and
    /// indexed by its owning shard only.
    pub fn ingest(mut self, batch: &Dataset) -> Result<Self, Error> {
        let n = self.builders.len() as u32;
        for sb in &mut self.builders {
            sb.check_batch(batch)?;
        }
        for tu in &batch.trajectories {
            let shard = self.policy.route(&self.net, tu, n);
            let sb = self
                .builders
                .get_mut(shard as usize)
                .ok_or(Error::ShardConfig("policy routed past the shard count"))?;
            sb.ingest_traj(tu)?;
        }
        Ok(self)
    }

    /// Finalizes every shard and assembles the facade. The finished
    /// store keeps the policy object, so [`ShardedStore::ingest`] can
    /// route further batches — including through custom policies that
    /// have no serializable spec.
    pub fn finish(self) -> Result<ShardedStore, Error> {
        let shards = self
            .builders
            .into_iter()
            .map(StoreBuilder::finish)
            .collect::<Result<Vec<_>, _>>()?;
        let spec = self.policy.spec();
        let store = ShardedStore::from_shards_with_policy(shards, spec, Some(self.policy))?;
        if let Durability::Wal(cfg) = self.durability {
            store.attach_wal(cfg)?;
        }
        Ok(store)
    }
}

/// The immutable routing/acceleration state of the facade, epoch-swapped
/// as one unit (see the [module docs](self)): a batch becomes visible
/// exactly when its facade state publishes.
struct FacadeState {
    /// Facade publication counter; 0 for the assembled/opened state.
    epoch: u64,
    /// Trajectory id → owning shard, across all shards.
    id_to_shard: HashMap<u64, u32>,
    /// Whether every shard's StIU grid is the same function (same
    /// network, same `grid_n`) — the normal case, which lets a range
    /// query build its query-cell set once instead of once per shard.
    uniform_grid: bool,
    /// Facade-level range acceleration: the shards' temporal interval
    /// postings merged into id-ascending `(id, shard, position)` lists,
    /// so a range query resolves its global candidate sequence with one
    /// lookup and zero sorting. Rebuilt at each facade publish (the
    /// rebuild is linear in the store and runs on the writer path, next
    /// to the much more expensive batch compression). `None` when the
    /// shards' time partitions disagree — then candidates are gathered
    /// and sorted per query.
    range_index: Option<RangeIndex>,
    /// Per shard, per trajectory position: the bitmap of StIU cells the
    /// trajectory's *reference* tuples touch — the batch scan engine's
    /// candidate-skip filter. A query whose cell bitmap does not
    /// intersect a candidate's is a definite miss (`range_matches`
    /// would find no passing group and return `false`), decided by a
    /// 16-word AND instead of the tuple scan. `None` per trajectory
    /// when any of its cells falls outside the bitmap's fixed range
    /// (grids finer than 32×32) — those candidates always evaluate.
    ref_cell_filters: Vec<Vec<Option<SegmentBitmap>>>,
}

impl FacadeState {
    /// Builds the facade over one pinned snapshot per shard, validating
    /// that no trajectory id appears in two partitions.
    fn build(epoch: u64, snaps: &[Arc<Snapshot>]) -> Result<Self, Error> {
        let mut id_to_shard = HashMap::with_capacity(snaps.iter().map(|s| s.len()).sum());
        for (s, snap) in snaps.iter().enumerate() {
            for ct in &snap.compressed().trajectories {
                if id_to_shard.insert(ct.id, s as u32).is_some() {
                    return Err(Error::DuplicateTrajectory(ct.id));
                }
            }
        }
        // bounds: windows(2) yields exactly-2-element slices
        let uniform_grid = snaps.windows(2).all(|w| {
            Arc::ptr_eq(w[0].network(), w[1].network())
                && w[0].stiu().params.grid_n == w[1].stiu().params.grid_n
        });
        let range_index = RangeIndex::build(snaps);
        let ref_cell_filters = snaps
            .iter()
            .map(|snap| {
                snap.stiu()
                    .trajs
                    .iter()
                    .map(|node| {
                        let mut bm = SegmentBitmap::new();
                        for rt in &node.ref_tuples {
                            if rt.cell.idx() >= crate::bitmap::SEG_BITS {
                                return None; // grid too fine: never filter
                            }
                            bm.set(rt.cell.0);
                        }
                        Some(bm)
                    })
                    .collect()
            })
            .collect();
        Ok(Self {
            epoch,
            id_to_shard,
            uniform_grid,
            range_index,
            ref_cell_filters,
        })
    }
}

/// One facade-level range candidate: a trajectory posting with its
/// owning shard, local position, and probability-mass pruning bound
/// (see [`crate::plan::TrajPlan::prob_mass`]) carried inline so the
/// batch scan engine prunes without touching the shard's plans.
#[derive(Clone, Copy, Debug)]
struct RangeCandidate {
    id: u64,
    shard: u32,
    pos: u32,
    mass: f64,
}

/// See [`FacadeState::range_index`].
struct RangeIndex {
    /// The shards' common temporal partition width.
    partition_s: i64,
    /// Interval key → candidates ascending by trajectory id.
    postings: HashMap<i64, Vec<RangeCandidate>>,
}

impl RangeIndex {
    /// Merges the shards' interval postings; `None` if the partition
    /// widths disagree (their interval keys would be incompatible).
    fn build(snaps: &[Arc<Snapshot>]) -> Option<Self> {
        // bounds: a facade is only ever built over ≥ 1 shard
        let partition_s = snaps[0].stiu().params.partition_s;
        if snaps
            .iter()
            .any(|s| s.stiu().params.partition_s != partition_s)
        {
            return None;
        }
        let mut postings: HashMap<i64, Vec<RangeCandidate>> = HashMap::new();
        for (s, snap) in snaps.iter().enumerate() {
            let trajectories = &snap.compressed().trajectories;
            let plans = snap.plans();
            snap.stiu().interval_trajs.for_each_posting(|key, j| {
                if let Some(ct) = trajectories.get(j as usize) {
                    postings.entry(key).or_default().push(RangeCandidate {
                        id: ct.id,
                        shard: s as u32,
                        pos: j,
                        mass: plans
                            .get(j as usize)
                            .map_or(f64::INFINITY, |p| p.prob_mass()),
                    });
                }
            });
        }
        for list in postings.values_mut() {
            list.sort_unstable_by_key(|c| (c.id, c.shard, c.pos));
        }
        Some(Self {
            partition_s,
            postings,
        })
    }

    /// The id-ascending candidates at `tq`, resuming past the keyset
    /// cursor `after`.
    fn candidates(&self, tq: i64, after: Option<u64>) -> &[RangeCandidate] {
        let list = self
            .postings
            .get(&tq.div_euclid(self.partition_s))
            .map_or(&[][..], Vec::as_slice); // bounds: full slice of an empty literal
        let start = match after {
            Some(a) => list.partition_point(|c| c.id <= a),
            None => 0,
        };
        &list[start..] // bounds: partition_point returns ≤ list.len()
    }
}

/// N [`Store`] partitions behind the single-store query surface.
///
/// See the [module docs](self) for execution, cursor, live-ingest and
/// persistence semantics. Equivalence with a single store over the same
/// dataset is asserted by `tests/shard_equivalence.rs`; live-vs-offline
/// build equivalence by `tests/live_ingest.rs`.
///
/// ```
/// use std::sync::Arc;
/// use utcq_core::shard::ByTime;
/// use utcq_core::{CompressParams, PageRequest, QueryTarget, StoreBuilder};
/// # fn main() -> Result<(), utcq_core::Error> {
/// let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 6, 7);
/// let store = StoreBuilder::new(
///     Arc::new(net),
///     CompressParams::with_interval(ds.default_interval),
/// )
/// .shard_by(Arc::new(ByTime::default()), 3)?
/// .ingest(&ds)?
/// .finish()?;
/// assert_eq!(store.shard_count(), 3);
/// assert_eq!(store.len(), 6);
///
/// // The exact same query surface as a single store.
/// let owner = store.traj_shard(0).unwrap() as usize;
/// let t0 = store.shards()[owner]
///     .decode_times(store.shards()[owner].traj_index(0).unwrap())?[0];
/// let page = store.where_query(0, t0, 0.0, PageRequest::default())?;
/// assert!(!page.items.is_empty());
/// # Ok(()) }
/// ```
pub struct ShardedStore {
    shards: Vec<Store>,
    spec: Option<ShardSpec>,
    /// The live routing policy; `None` for custom-policy containers
    /// reopened from disk (they query fine but cannot route new
    /// batches).
    policy: Option<Arc<dyn ShardPolicy>>,
    /// The current facade epoch — queries pin it, ingest swaps it.
    facade: Swap<FacadeState>,
    /// Facade epoch the next publish will carry.
    next_epoch: AtomicU64,
    /// Serializes facade writers (ingest, consistent checkpoints).
    writer: Mutex<()>,
    /// The facade-level write-ahead log, if any (whole batches, facade
    /// epochs). Taken only by writers, always after the writer lock.
    durability: Mutex<Option<Sidecar>>,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("trajectories", &self.len())
            .field("policy", &self.spec)
            .finish_non_exhaustive()
    }
}

impl ShardedStore {
    /// Assembles a facade over already-built shards, validating that no
    /// trajectory id appears in two partitions. The routing policy is
    /// reconstructed from `spec` when it names a built-in policy;
    /// `None` (custom) leaves the store queryable but not live-ingestable.
    pub fn from_shards(shards: Vec<Store>, spec: Option<ShardSpec>) -> Result<Self, Error> {
        let policy = spec.map(ShardSpec::policy);
        Self::from_shards_with_policy(shards, spec, policy)
    }

    /// [`ShardedStore::from_shards`] with an explicit live policy — the
    /// builder path, which keeps custom policy objects routable.
    pub(crate) fn from_shards_with_policy(
        shards: Vec<Store>,
        spec: Option<ShardSpec>,
        policy: Option<Arc<dyn ShardPolicy>>,
    ) -> Result<Self, Error> {
        if shards.is_empty() {
            return Err(Error::ShardConfig("shard count must be at least 1"));
        }
        if shards.len() > MAX_SHARDS as usize {
            return Err(Error::ShardConfig("shard count exceeds 65536"));
        }
        let snaps: Vec<Arc<Snapshot>> = shards.iter().map(Store::snapshot).collect();
        let facade = FacadeState::build(0, &snaps)?;
        Ok(Self {
            shards,
            spec,
            policy,
            facade: Swap::new(Arc::new(facade)),
            next_epoch: AtomicU64::new(1),
            writer: Mutex::new(()),
            durability: Mutex::new(None),
        })
    }

    /// Opens a sharded v3 container (or a plain v2 container as a
    /// single-shard store). v1 containers fail with
    /// [`Error::NeedsNetwork`], as with [`Store::open`]. Per-shard blobs
    /// deserialize in parallel across the available cores.
    ///
    /// ```no_run
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// let store = utcq_core::ShardedStore::open("data.utcq")?;
    /// println!("{} shards, policy {:?}", store.shard_count(), store.policy_spec());
    /// # Ok(()) }
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        let f = File::open(path)?;
        Self::read(&mut BufReader::new(f))
    }

    /// Reads a v3 (or v2) container from an arbitrary reader,
    /// deserializing the per-shard blobs in parallel — equivalent to
    /// [`ShardedStore::read_with`]`(r, true)`.
    pub fn read(r: &mut impl Read) -> Result<Self, Error> {
        Self::read_with(r, true)
    }

    /// Reads a v3 (or v2) container, choosing between parallel and
    /// sequential shard deserialization. Parallel opens pull one blob
    /// per work unit from the shared atomic-counter queue
    /// (deserialization + plan building per shard); the sequential mode
    /// exists for measurement (`bench_queries` reports the speedup in
    /// `BENCH_queries.json`) and for callers that must not spawn.
    ///
    /// `parallel` is a *permission*, not a command: below
    /// [`PARALLEL_OPEN_MIN_BYTES`] of total shard payload the open
    /// falls back to sequential anyway — on tiny containers the
    /// thread-spawn overhead measurably exceeds the deserialization
    /// work (the `open` bench once reported parallel 7% *slower* on
    /// the small CD profile). Use [`ShardedStore::read_with_report`]
    /// to learn which path actually ran.
    ///
    /// The embedded road network is deserialized from the first shard
    /// and shared across all shards behind one `Arc`; the other shards'
    /// embedded copies are validated against it and dropped.
    pub fn read_with(r: &mut impl Read, parallel: bool) -> Result<Self, Error> {
        Self::read_with_report(r, parallel).map(|(store, _)| store)
    }

    /// [`ShardedStore::read_with`], also reporting whether the parallel
    /// path actually ran (`false` means sequential — either by request
    /// or by the small-container fallback).
    pub fn read_with_report(r: &mut impl Read, parallel: bool) -> Result<(Self, bool), Error> {
        let (dir, blobs) = match storage::load_v3(r) {
            Ok(parts) => parts,
            Err(storage::StorageError::LegacyVersion) => return Err(Error::NeedsNetwork),
            Err(e) => return Err(e.into()),
        };
        let payload: u64 = blobs.iter().map(|b| b.len() as u64).sum();
        let parallel = parallel && parallel_open_effective(blobs.len(), payload);
        type ShardParts = (
            RoadNetwork,
            crate::compress::CompressedDataset,
            crate::stiu::Stiu,
            crate::chunk::SharedIdMap,
            crate::chunk::ChunkedVec<crate::plan::TrajPlan>,
        );
        let load_one = |blob: &Vec<u8>| -> Result<ShardParts, Error> {
            let (net, cds, stiu) = storage::load_v2(&mut blob.as_slice())?;
            let (id_to_idx, plans) = Store::validate_parts(&cds, &stiu)?;
            Ok((net, cds, stiu, id_to_idx, plans))
        };
        let parts: Vec<ShardParts> = if parallel {
            // bounds: par_run yields i < blobs.len()
            par_run(blobs.len(), |i| load_one(&blobs[i]))?
        } else {
            blobs.iter().map(load_one).collect::<Result<_, _>>()?
        };
        let mut shared_net: Option<Arc<RoadNetwork>> = None;
        let mut shards = Vec::with_capacity(parts.len());
        for (net, cds, stiu, id_to_idx, plans) in parts {
            let net = match &shared_net {
                None => {
                    let net = Arc::new(net);
                    shared_net = Some(Arc::clone(&net));
                    net
                }
                Some(first) => {
                    // Full structural comparison: shards assembled from
                    // different networks with coincidentally equal
                    // counts must not silently answer against shard 0's
                    // geometry.
                    if **first != net {
                        return Err(Error::CorruptStore("shards embed different networks"));
                    }
                    Arc::clone(first)
                }
            };
            shards.push(Store::from_validated(net, cds, stiu, id_to_idx, plans));
        }
        let store = Self::from_shards(shards, dir.and_then(ShardSpec::from_directory))?;
        // Per-shard assembly defaults each cache to the full default
        // budget; a sharded store's default is a *total* budget split
        // across shards, matching what the builder configures.
        store.set_cache_bytes(crate::cache::DEFAULT_CACHE_BYTES);
        Ok((store, parallel))
    }

    /// Persists the store as a v3 container. Safe to call while other
    /// threads ingest: the shard snapshots are pinned under the writer
    /// lock, so the checkpoint is a batch-consistent cut.
    ///
    /// ```no_run
    /// # fn demo(store: utcq_core::ShardedStore) -> Result<(), utcq_core::Error> {
    /// store.save("sharded.utcq")?;
    /// let reopened = utcq_core::ShardedStore::open("sharded.utcq")?;
    /// assert_eq!(reopened.shard_count(), store.shard_count());
    /// # Ok(()) }
    /// ```
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        crate::wal::atomic_write(path.as_ref(), |w| self.write(w))
    }

    /// Writes the v3 container to an arbitrary writer (a consistent cut;
    /// see [`ShardedStore::save`]).
    pub fn write(&self, w: &mut impl Write) -> Result<(), Error> {
        let snaps = self.pin_consistent();
        self.write_snaps(&snaps, w)
    }

    /// Serializes an already-pinned set of shard snapshots as a v3
    /// container — shared by [`ShardedStore::write`] and the checkpoint
    /// path (which pins under its own writer lock).
    fn write_snaps(&self, snaps: &[Arc<Snapshot>], w: &mut impl Write) -> Result<(), Error> {
        let mut blobs = Vec::with_capacity(snaps.len());
        for snap in snaps {
            let mut blob = Vec::new();
            snap.write(&mut blob)?;
            blobs.push(blob);
        }
        storage::save_v3(ShardSpec::directory(self.spec), &blobs, w)?;
        Ok(())
    }

    /// Adopts the writer lock even if a previous writer panicked — a
    /// panicking batch only ever discarded private state.
    fn writer_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// One pinned snapshot per shard at a batch boundary: taken under
    /// the writer lock so no in-flight batch is half-visible across the
    /// cut.
    fn pin_consistent(&self) -> Vec<Arc<Snapshot>> {
        let _writer = self.writer_lock();
        self.shards.iter().map(Store::snapshot).collect()
    }

    /// Routes, compresses and **publishes** one batch concurrently with
    /// queries — the sharded counterpart of [`Store::ingest`].
    ///
    /// Routing duplicates the single-store validation up front (against
    /// the current facade and within the batch); then each shard's
    /// sub-batch compresses into a *prepared, unpublished* snapshot on
    /// the shared work-queue model — per-shard compression is exactly
    /// the parallelism the partitioning buys. Only when **every**
    /// sub-batch compressed does anything publish: the prepared shard
    /// snapshots (pointer swaps), then a fresh facade state (routing
    /// map + range index) as the next facade epoch — the batch's
    /// visibility point. A failure anywhere discards every prepared
    /// snapshot, so batches are **all-or-nothing across shards**.
    /// Queries never block: they run on pinned snapshots throughout.
    ///
    /// Fails with [`Error::ShardConfig`] on a store reopened from a
    /// custom-policy container (no way to route). Ingest through the
    /// facade only — writing directly to a partition reached via
    /// [`ShardedStore::shards`] bypasses routing and may be overwritten
    /// by a concurrent facade publish.
    pub fn ingest(&self, batch: &Dataset) -> Result<IngestReport, Error> {
        let _writer = self.writer_lock();
        self.ingest_locked(batch)
    }

    /// [`ShardedStore::ingest`] with the writer lock already held — the
    /// WAL replay path of [`ShardedStore::attach_wal`] drives this
    /// directly.
    fn ingest_locked(&self, batch: &Dataset) -> Result<IngestReport, Error> {
        let Some(policy) = &self.policy else {
            return Err(Error::ShardConfig(
                "live ingest needs a routing policy (custom-policy containers are read-only)",
            ));
        };
        // bounds: constructors reject zero shards
        let expected = self.shards[0].params().default_interval;
        if batch.default_interval != expected {
            return Err(Error::IntervalMismatch {
                expected,
                got: batch.default_interval,
            });
        }
        let facade = self.facade.load();
        let mut seen = std::collections::HashSet::with_capacity(batch.trajectories.len());
        for tu in &batch.trajectories {
            if facade.id_to_shard.contains_key(&tu.id) || !seen.insert(tu.id) {
                return Err(Error::DuplicateTrajectory(tu.id));
            }
        }
        let n = self.shards.len() as u32;
        let mut routed: Vec<Vec<&UncertainTrajectory>> = vec![Vec::new(); n as usize];
        for tu in &batch.trajectories {
            let shard = policy.route(self.network(), tu, n);
            routed
                .get_mut(shard as usize)
                .ok_or(Error::ShardConfig("policy routed past the shard count"))?
                .push(tu);
        }
        // Compress per shard on the shared work queue into prepared,
        // unpublished snapshots. An error on any shard returns here
        // with nothing published anywhere.
        let prepared: Vec<Option<Arc<Snapshot>>> = par_run(self.shards.len(), |s| {
            // bounds: par_run yields s < shards.len(); routed has one slot per shard
            self.shards[s].prepare_trajs(batch.default_interval, &batch.name, &routed[s])
        })?;
        if prepared.iter().all(Option::is_none) {
            return Ok(IngestReport {
                ingested: 0,
                total: facade.id_to_shard.len(),
                epoch: facade.epoch,
            });
        }
        // The batch will publish: log it first, so that a crash from
        // here on replays it. The facade epoch is allocated up front —
        // it is what the record carries as the expected post-epoch.
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.wal_append(epoch, batch) {
            // Nothing published: roll the epoch allocation back so the
            // log and the facade epoch sequence stay gap-free.
            self.next_epoch.fetch_sub(1, Ordering::Relaxed);
            return Err(e);
        }
        // Publish: shards first (back-to-back pointer swaps), facade
        // second — the facade publish is the batch's visibility point.
        let snaps: Vec<Arc<Snapshot>> = prepared
            .into_iter()
            .zip(&self.shards)
            .map(|(p, shard)| match p {
                Some(snap) => {
                    shard.publish_snapshot(Arc::clone(&snap));
                    snap
                }
                None => shard.snapshot(),
            })
            .collect();
        // The shards-published / facade-unpublished window the ordering
        // argument hinges on: readers here must see the old facade.
        crate::hooks::point("sharded.shards_published");
        let new_facade = FacadeState::build(epoch, &snaps)?;
        let total = new_facade.id_to_shard.len();
        self.facade.store(Arc::new(new_facade));
        Ok(IngestReport {
            ingested: batch.trajectories.len(),
            total,
            epoch,
        })
    }

    /// The current facade epoch (bumped by every [`ShardedStore::ingest`]
    /// publication).
    pub fn facade_epoch(&self) -> u64 {
        self.facade.load().epoch
    }

    /// Adopts the durability slot even after a writer panic (see
    /// [`Store`]'s equivalent: an interrupted append is a torn tail on
    /// the next open, not broken memory state).
    fn wal_lock(&self) -> std::sync::MutexGuard<'_, Option<Sidecar>> {
        match self.durability.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Logs a publishing batch under facade epoch `epoch`. No-op without
    /// an attached WAL. Called under the writer lock, before any shard
    /// publishes.
    fn wal_append(&self, epoch: u64, batch: &Dataset) -> Result<(), Error> {
        let mut guard = self.wal_lock();
        let Some(sc) = guard.as_mut() else {
            return Ok(());
        };
        sc.append_live(wal::Record {
            epoch,
            name: batch.name.clone(),
            default_interval: batch.default_interval,
            trajectories: batch.trajectories.clone(),
        })
    }

    /// Opens a sharded container with a write-ahead log sidecar — the
    /// sharded counterpart of [`Store::open_durable`]: logged batches
    /// replay through the normal routed ingest path, so the rebuilt
    /// store is byte-identical to one that ingested them live. The
    /// container path becomes the checkpoint target unless `cfg` names
    /// another.
    pub fn open_durable(path: impl AsRef<Path>, cfg: WalConfig) -> Result<Self, Error> {
        let path = path.as_ref();
        let store = Self::open(path)?;
        let mut cfg = cfg;
        if cfg.checkpoint_to.is_none() {
            cfg.checkpoint_to = Some(path.to_path_buf());
        }
        store.attach_wal(cfg)?;
        Ok(store)
    }

    /// Attaches a facade-level write-ahead log, replaying any records in
    /// the file through [`ShardedStore::ingest`]'s routed path. Returns
    /// the number of replayed batches. Tolerates the same
    /// crashed-mid-checkpoint prefix as [`Store::attach_wal`].
    pub fn attach_wal(&self, cfg: WalConfig) -> Result<usize, Error> {
        let _writer = self.writer_lock();
        if self.wal_lock().is_some() {
            return Err(Error::CorruptStore("a wal is already attached"));
        }
        let (wal, records) = wal::Wal::open(&cfg)?;
        let mut sc = Sidecar::new(wal, &cfg);
        let mut skipped = 0u64;
        let mut applied: Vec<wal::Record> = Vec::new();
        for (expect, rec) in (1u64..).zip(records) {
            if rec.epoch != expect {
                return Err(Error::CorruptStore("wal record epochs are not sequential"));
            }
            let all_present = !rec.trajectories.is_empty() && {
                let facade = self.facade.load();
                rec.trajectories
                    .iter()
                    .all(|t| facade.id_to_shard.contains_key(&t.id))
            };
            if all_present {
                if !applied.is_empty() {
                    return Err(Error::CorruptStore("wal batch overlaps the container"));
                }
                skipped += 1;
                continue;
            }
            let batch = Dataset {
                name: rec.name.clone(),
                default_interval: rec.default_interval,
                trajectories: rec.trajectories.clone(),
            };
            let report = self.ingest_locked(&batch)?;
            let live = rec.epoch - skipped;
            if report.epoch != live {
                if report.ingested == 0 && applied.is_empty() {
                    skipped += 1;
                    continue;
                }
                return Err(Error::CorruptStore(
                    "wal replay produced an unexpected epoch",
                ));
            }
            applied.push(wal::Record { epoch: live, ..rec });
        }
        if skipped > 0 {
            sc.wal.truncate()?;
            for rec in &applied {
                sc.wal.append(rec)?;
            }
        }
        let n = applied.len();
        for rec in applied {
            sc.push_feed(rec);
        }
        *self.wal_lock() = Some(sc);
        Ok(n)
    }

    /// Crash-safe checkpoint — the sharded counterpart of
    /// [`Store::checkpoint`]: saves a batch-consistent v3 cut to the
    /// recorded target (tmp file + rename + directory fsync), then
    /// truncates the log. `Ok(None)` without an attached WAL or target.
    pub fn checkpoint(&self) -> Result<Option<CheckpointReport>, Error> {
        let _writer = self.writer_lock();
        let snaps: Vec<Arc<Snapshot>> = self.shards.iter().map(Store::snapshot).collect();
        let epoch = self.facade.load().epoch;
        let mut guard = self.wal_lock();
        let Some(sc) = guard.as_mut() else {
            return Ok(None);
        };
        let Some(target) = sc.checkpoint_to.clone() else {
            return Ok(None);
        };
        let log_bytes = sc.wal.len_bytes();
        wal::atomic_write(&target, |w| self.write_snaps(&snaps, w))?;
        sc.checkpointed(epoch)?;
        Ok(Some(CheckpointReport { epoch, log_bytes }))
    }

    /// Current size of the attached log in bytes; `None` without a WAL.
    pub fn wal_bytes(&self) -> Option<u64> {
        self.wal_lock().as_ref().map(|sc| sc.wal.len_bytes())
    }

    /// Batches published after facade epoch `from` (capped at `max`),
    /// from the in-memory feed; `None` without a WAL.
    pub fn wal_tail(&self, from: u64, max: usize) -> Option<TailRead> {
        let current = self.facade.load().epoch;
        self.wal_lock()
            .as_ref()
            .map(|sc| sc.records_since(from, max, current))
    }

    /// If the attached WAL recorded exactly this batch, its facade
    /// epoch and size (see [`Store::wal_dedup`]).
    pub fn wal_dedup(&self, tus: &[UncertainTrajectory]) -> Option<(u64, usize)> {
        self.wal_lock().as_ref().and_then(|sc| sc.dedup_epoch(tus))
    }

    /// The shard partitions, in directory order — read them freely
    /// (snapshots, decode, cache stats), but ingest through
    /// [`ShardedStore::ingest`] only: a direct partition write bypasses
    /// routing and may be overwritten by a concurrent facade publish.
    pub fn shards(&self) -> &[Store] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy recorded for this store (`None` when it was
    /// built with a custom policy or opened from a v2 container).
    pub fn policy_spec(&self) -> Option<ShardSpec> {
        self.spec
    }

    /// The road network, shared by every shard.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        self.shards[0].network() // bounds: constructors reject zero shards
    }

    /// Total number of trajectories currently visible through the
    /// facade.
    pub fn len(&self) -> usize {
        self.facade.load().id_to_shard.len()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard owning trajectory `id`, if ingested.
    pub fn traj_shard(&self, id: u64) -> Option<u32> {
        self.facade.load().id_to_shard.get(&id).copied()
    }

    /// Component-wise and total compression ratios aggregated across
    /// shards.
    pub fn ratios(&self) -> crate::compress::Ratios {
        let mut raw = utcq_traj::size::SizeBreakdown::default();
        let mut compressed = utcq_traj::size::SizeBreakdown::default();
        for s in &self.shards {
            let snap = s.snapshot();
            raw.add(&snap.compressed().raw);
            compressed.add(&snap.compressed().compressed);
        }
        crate::compress::Ratios::from_sizes(&raw, &compressed)
    }

    /// Translates an incoming global cursor into the owning shard's
    /// local cursor, rejecting cursors minted for a different shard.
    fn local_page(&self, shard: u32, page: PageRequest) -> Result<PageRequest, Error> {
        let cursor = match page.cursor {
            None => None,
            Some(global) => {
                let (tag, local) = decode_cursor(global);
                if tag != shard {
                    return Err(Error::InvalidCursor);
                }
                Some(local)
            }
        };
        Ok(PageRequest {
            limit: page.limit,
            cursor,
        })
    }

    /// Re-tags a shard-local page as a global one. Items are moved, not
    /// cloned — the merge path never copies decoded payloads.
    fn global_page<T>(shard: u32, page: Page<T>) -> Page<T> {
        Page {
            items: page.items,
            next_cursor: page.next_cursor.map(|c| encode_cursor(shard, c)),
            has_more: page.has_more,
        }
    }

    /// Probabilistic **where** query — resolved to the owning shard.
    pub fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        let Some(shard) = self.traj_shard(traj_id) else {
            return Ok(Page::slice(Vec::new(), PageRequest::first(page.limit)));
        };
        let local = self.local_page(shard, page)?;
        // bounds: the facade id map only holds in-range shard indices
        let snap = self.shards[shard as usize].snapshot();
        let answer = snap.where_query(traj_id, t, alpha, local)?;
        Ok(Self::global_page(shard, answer))
    }

    /// Probabilistic **when** query — resolved to the owning shard.
    pub fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        let Some(shard) = self.traj_shard(traj_id) else {
            return Ok(Page::slice(Vec::new(), PageRequest::first(page.limit)));
        };
        let local = self.local_page(shard, page)?;
        // bounds: the facade id map only holds in-range shard indices
        let snap = self.shards[shard as usize].snapshot();
        let answer = snap.when_query(traj_id, edge, rd, alpha, local)?;
        Ok(Self::global_page(shard, answer))
    }

    /// Probabilistic **range** query with fan-out/merge execution:
    /// candidates are gathered from every shard, merged into one
    /// id-ascending sequence, and evaluated in that order until the page
    /// fills — byte-identical answers and page boundaries to a single
    /// store over the same dataset. The keyset cursor (last returned id)
    /// is shard-agnostic.
    ///
    /// The facade is pinned first and the shard snapshots after:
    /// publication order guarantees every candidate position the facade
    /// index names exists in the pinned snapshots.
    pub fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        let facade = self.facade.load();
        let snaps: Vec<Arc<Snapshot>> = self.shards.iter().map(Store::snapshot).collect();
        // Candidates globally ascending by trajectory id (ids are unique
        // across shards, so that is a total order): one lookup in the
        // prebuilt facade index, or a gather-and-sort fallback when the
        // shards' time partitions disagree.
        let gathered;
        let candidates: &[RangeCandidate] = match &facade.range_index {
            Some(ri) => ri.candidates(tq, page.cursor),
            None => {
                gathered = Self::gather_candidates(&snaps, tq, page.cursor);
                &gathered
            }
        };
        // One cell set serves every shard when the grids agree (always,
        // for stores built through one builder or reopened from v3);
        // heterogeneous shards fall back to per-shard sets lazily.
        // bounds: constructors reject zero shards
        let shared_cells = facade.uniform_grid.then(|| snaps[0].query_cells(re));
        let mut per_shard_cells: Vec<Option<std::collections::HashSet<utcq_network::CellId>>> =
            if shared_cells.is_some() {
                Vec::new()
            } else {
                vec![None; snaps.len()]
            };
        let limit = page.limit.max(1); // a zero limit could never progress
        let mut items = Vec::new();
        let mut has_more = false;
        for &RangeCandidate {
            id,
            shard: s,
            pos: j,
            mass,
        } in candidates
        {
            if items.len() >= limit {
                has_more = true;
                break;
            }
            // Probability-mass prune (see `crate::query::range_pruned`):
            // the candidate keeps its pagination slot, exactly like an
            // evaluated-and-rejected one.
            if crate::query::range_pruned(mass, alpha) {
                continue;
            }
            // bounds: candidate shard tags index the snaps they were gathered from
            let snap = &snaps[s as usize];
            let cells = match &shared_cells {
                Some(c) => c,
                // bounds: same shard tag `s` as the snaps index above
                None => per_shard_cells[s as usize].get_or_insert_with(|| snap.query_cells(re)),
            };
            if snap.range_matches_at(j, cells, re, tq, alpha)? {
                items.push(id);
            }
        }
        // has_more implies the page filled (limit ≥ 1), so `last()` is
        // present — but never worth a panic path.
        let next_cursor = if has_more {
            items.last().copied()
        } else {
            None
        };
        Ok(Page {
            items,
            next_cursor,
            has_more,
        })
    }

    /// Gathers candidates across shards, ascending by id, when the
    /// facade range index is unavailable (heterogeneous time
    /// partitions). Pruning bounds come from each shard's plans.
    fn gather_candidates(
        snaps: &[Arc<Snapshot>],
        tq: i64,
        after: Option<u64>,
    ) -> Vec<RangeCandidate> {
        let mut c: Vec<RangeCandidate> = Vec::new();
        for (s, snap) in snaps.iter().enumerate() {
            let plans = snap.plans();
            c.extend(
                snap.unsorted_range_candidates(tq)
                    .filter(|&(id, _)| after.is_none_or(|a| id > a))
                    .map(|(id, j)| RangeCandidate {
                        id,
                        shard: s as u32,
                        pos: j,
                        mass: plans
                            .get(j as usize)
                            .map_or(f64::INFINITY, |p| p.prob_mass()),
                    }),
            );
        }
        c.sort_unstable_by_key(|c| (c.id, c.shard, c.pos));
        c
    }

    /// Evaluates a batch of **range** queries in parallel, answers
    /// unpaginated and in input order — the dedicated batch scan
    /// engine.
    ///
    /// Work units on the shared atomic-counter queue
    /// (`crate::query::par_run`) are *(query, candidate-chunk)*
    /// sub-units, not whole queries: one heavy query or one hot shard
    /// splits across workers instead of serializing the batch, and the
    /// queue doubles as work stealing (idle workers pull the next
    /// counter value wherever it lands). The final merge is
    /// deterministic — chunks of one query concatenate in chunk order,
    /// which is ascending id order because the prebuilt candidate
    /// lists are id-sorted and ids are unique across shards.
    ///
    /// Per-batch costs are paid once (facade and snapshots pinned,
    /// per-query cell sets resolved up front); per-worker costs are
    /// amortized (one `RangeScratch` serves a whole
    /// sub-unit); per-candidate work is only the pruning test and — for
    /// survivors — `range_matches`. The whole-shape result cache is
    /// deliberately bypassed: batch timings measure the scan.
    pub fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        /// Candidates per sub-unit: small enough that a heavy query
        /// splits across a machine's workers, large enough that the
        /// per-unit queue pull and scratch setup stay negligible.
        const SUB_UNIT: usize = 64;
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let facade = self.facade.load();
        let snaps: Vec<Arc<Snapshot>> = self.shards.iter().map(Store::snapshot).collect();
        // Resolve each query's cell set once when every grid agrees.
        let shared_cells: Option<Vec<std::collections::HashSet<utcq_network::CellId>>> =
            facade.uniform_grid.then(|| {
                queries
                    .iter()
                    .map(|q| snaps[0].query_cells(&q.re)) // bounds: ≥ 1 shard
                    .collect()
            });
        // Each query's cell set as a bitmap, for the AND-skip against
        // the facade's per-candidate cell filters. `None` per query
        // when a cell falls outside the bitmap range (that query always
        // evaluates), or entirely when the grids disagree (the cell
        // sets would be per shard).
        let query_cell_bitmaps: Vec<Option<SegmentBitmap>> = match &shared_cells {
            Some(all) => all
                .iter()
                .map(|cells| {
                    let mut bm = SegmentBitmap::new();
                    for c in cells {
                        if c.idx() >= crate::bitmap::SEG_BITS {
                            return None;
                        }
                        bm.set(c.0);
                    }
                    Some(bm)
                })
                .collect(),
            None => vec![None; queries.len()],
        };
        // The heterogeneous fallback gathers candidates per query up
        // front (owned), the fast path chunks the prebuilt index lists
        // (borrowed) — either way the unit list is (query, candidates).
        let gathered: Vec<Vec<RangeCandidate>> = match &facade.range_index {
            Some(_) => Vec::new(),
            None => queries
                .iter()
                .map(|q| Self::gather_candidates(&snaps, q.tq, None))
                .collect(),
        };
        let mut units: Vec<(usize, &[RangeCandidate])> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let cands: &[RangeCandidate] = match &facade.range_index {
                Some(ri) => ri.candidates(q.tq, None),
                // bounds: `gathered` has one entry per query in the fallback
                None => &gathered[qi],
            };
            for chunk in cands.chunks(SUB_UNIT) {
                units.push((qi, chunk));
            }
        }
        let partials = par_run(units.len(), |ui| {
            let (qi, chunk) = units[ui]; // bounds: par_run yields ui < units.len()
            let q = &queries[qi]; // bounds: units are built from query indices
            let mut scratch = crate::query::RangeScratch::new();
            // Lazily memoized per shard for the heterogeneous grid case
            // — never rebuilt per candidate.
            let mut per_shard_cells: Vec<Option<std::collections::HashSet<utcq_network::CellId>>> =
                if shared_cells.is_some() {
                    Vec::new()
                } else {
                    vec![None; snaps.len()]
                };
            let mut hits = Vec::new();
            for &RangeCandidate {
                id,
                shard: s,
                pos: j,
                mass,
            } in chunk
            {
                // Pruned candidates skip evaluation entirely.
                if crate::query::range_pruned(mass, q.alpha) {
                    continue;
                }
                // Definite spatial miss: no reference tuple cell of the
                // candidate intersects the query's cells, so
                // `range_matches` could only return `false` — one
                // 16-word AND instead of the whole tuple scan.
                // bounds: one query bitmap per query, indexed by qi
                if let Some(qbm) = &query_cell_bitmaps[qi] {
                    if let Some(Some(cbm)) = facade
                        .ref_cell_filters
                        .get(s as usize)
                        .and_then(|f| f.get(j as usize))
                    {
                        if !qbm.intersects(cbm) {
                            continue;
                        }
                    }
                }
                // bounds: candidate shard tags index the snaps of this facade
                let snap = &snaps[s as usize];
                let cells = match &shared_cells {
                    // bounds: one cell set per query, indexed by qi
                    Some(all) => &all[qi],
                    None => {
                        per_shard_cells[s as usize].get_or_insert_with(|| snap.query_cells(&q.re))
                    }
                };
                if snap.range_matches_at_with(j, cells, &q.re, q.tq, q.alpha, &mut scratch)? {
                    hits.push(id);
                }
            }
            Ok(hits)
        })?;
        // Deterministic merge: concatenating a query's chunk results in
        // chunk order restores the full id-ascending answer.
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); queries.len()];
        for (&(qi, _), hits) in units.iter().zip(partials) {
            out[qi].extend(hits); // bounds: qi < queries.len() by construction
        }
        Ok(out)
    }

    /// Aggregated decode-cache counters across shards (budget and
    /// footprint are totals).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let st = s.cache_stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
            total.negative_hits += st.negative_hits;
            total.entries += st.entries;
            total.negative_entries += st.negative_entries;
            total.bytes += st.bytes;
            total.budget_bytes += st.budget_bytes;
        }
        total
    }

    /// Splits a *total* byte budget evenly across the shards' decode
    /// caches (`0` disables caching everywhere).
    pub fn set_cache_bytes(&self, total_bytes: usize) {
        let per_shard = total_bytes / self.shards.len();
        for s in &self.shards {
            s.set_cache_bytes(per_shard);
        }
    }

    /// Drops every cached decode in every shard.
    pub fn clear_cache(&self) {
        for s in &self.shards {
            s.clear_cache();
        }
    }
}

impl QueryTarget for ShardedStore {
    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn network(&self) -> &Arc<RoadNetwork> {
        ShardedStore::network(self)
    }

    fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        ShardedStore::where_query(self, traj_id, t, alpha, page)
    }

    fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        ShardedStore::when_query(self, traj_id, edge, rd, alpha, page)
    }

    fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        ShardedStore::range_query(self, re, tq, alpha, page)
    }

    fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        ShardedStore::par_range_query(self, queries)
    }

    fn cache_stats(&self) -> CacheStats {
        ShardedStore::cache_stats(self)
    }

    fn set_cache_bytes(&self, bytes: usize) {
        ShardedStore::set_cache_bytes(self, bytes)
    }

    fn clear_cache(&self) {
        ShardedStore::clear_cache(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    fn paper_dataset() -> (Arc<RoadNetwork>, Dataset) {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        (Arc::new(fx.example.net.clone()), ds)
    }

    fn sharded(n: u32) -> ShardedStore {
        let (net, ds) = paper_dataset();
        StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .stiu_params(StiuParams {
            partition_s: 900,
            grid_n: 4,
        })
        .shard_by(Arc::new(ByTime::default()), n)
        .unwrap()
        .ingest(&ds)
        .unwrap()
        .finish()
        .unwrap()
    }

    #[test]
    fn sharded_store_is_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<ShardedStore>();
        assert_send_sync::<ShardedStoreBuilder>();
    }

    #[test]
    fn cursor_roundtrip() {
        for (shard, local) in [(0u32, 0u64), (1, 7), (65535, LOCAL_CURSOR_MASK)] {
            let g = encode_cursor(shard, local);
            assert_eq!(decode_cursor(g), (shard, local));
        }
    }

    #[test]
    fn routes_are_stable_and_in_range() {
        let (net, ds) = paper_dataset();
        for n in [1u32, 2, 7] {
            for policy in [
                Arc::new(ByTime::default()) as Arc<dyn ShardPolicy>,
                Arc::new(ByRegion::default()),
            ] {
                let a = policy.route(&net, &ds.trajectories[0], n);
                let b = policy.route(&net, &ds.trajectories[0], n);
                assert_eq!(a, b);
                assert!(a < n);
            }
        }
    }

    #[test]
    fn paper_examples_answer_identically_through_shards() {
        let store = sharded(3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.shard_count(), 3);
        let fx = paper_fixture::build();
        let hits = store
            .where_query(1, paper_fixture::hms(5, 21, 25), 0.25, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc.edge, fx.example.edge(6, 7));
        let t = paper_fixture::hms(5, 5, 25);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert_eq!(
            store
                .range_query(&all, t, 0.5, PageRequest::all())
                .unwrap()
                .into_items(),
            vec![1]
        );
    }

    #[test]
    fn unknown_id_is_empty_not_an_error() {
        let store = sharded(2);
        let page = store.where_query(99, 0, 0.0, PageRequest::all()).unwrap();
        assert!(page.items.is_empty() && !page.has_more);
    }

    #[test]
    fn foreign_shard_cursor_is_rejected() {
        let store = sharded(2);
        let shard = store.traj_shard(1).unwrap();
        let foreign = encode_cursor(shard + 1, 0);
        let r = store.where_query(
            1,
            paper_fixture::hms(5, 5, 0),
            0.0,
            PageRequest::after(foreign, 2),
        );
        assert!(matches!(r, Err(Error::InvalidCursor)));
    }

    #[test]
    fn zero_shards_rejected() {
        let (net, ds) = paper_dataset();
        let r = StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .shard_by(Arc::new(ByTime::default()), 0);
        assert!(matches!(r, Err(Error::ShardConfig(_))));
        let _ = ds;
    }

    #[test]
    fn shard_by_after_ingest_rejected() {
        let (net, ds) = paper_dataset();
        let b = StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .ingest(&ds)
        .unwrap();
        assert!(matches!(
            b.shard_by(Arc::new(ByTime::default()), 2),
            Err(Error::ShardConfig(_))
        ));
    }

    #[test]
    fn live_sharded_ingest_rejects_duplicates_atomically() {
        let store = sharded(2);
        let (_, ds) = paper_dataset();
        let epoch_before = store.facade_epoch();
        assert!(matches!(
            store.ingest(&ds),
            Err(Error::DuplicateTrajectory(1))
        ));
        assert_eq!(store.facade_epoch(), epoch_before);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn v3_roundtrip_through_bytes() {
        let store = sharded(3);
        let mut bytes = Vec::new();
        store.write(&mut bytes).unwrap();
        for parallel in [false, true] {
            let reopened = ShardedStore::read_with(&mut bytes.as_slice(), parallel).unwrap();
            assert_eq!(reopened.shard_count(), 3);
            assert_eq!(reopened.len(), store.len());
            assert_eq!(
                reopened.policy_spec(),
                Some(ShardSpec::ByTime { interval_s: 3600 })
            );
            // The shared-network path: every shard holds the same Arc.
            for s in reopened.shards() {
                assert!(Arc::ptr_eq(s.network(), reopened.network()));
            }
        }
        // A single-store open of the same bytes is redirected.
        assert!(matches!(
            Store::read(&mut bytes.as_slice()),
            Err(Error::ShardedContainer)
        ));
    }

    #[test]
    fn tiny_parallel_open_falls_back_to_sequential() {
        let store = sharded(3);
        let mut bytes = Vec::new();
        store.write(&mut bytes).unwrap();
        // The test container is far below PARALLEL_OPEN_MIN_BYTES, so a
        // parallel-permitted open must report the sequential fallback
        // and still produce an identical store.
        let (reopened, ran_parallel) =
            ShardedStore::read_with_report(&mut bytes.as_slice(), true).unwrap();
        assert!(!ran_parallel);
        assert!(bytes.len() < PARALLEL_OPEN_MIN_BYTES as usize);
        assert_eq!(reopened.shard_count(), 3);
        assert_eq!(reopened.len(), store.len());
        // The predicate itself: needs both multiple shards and bytes.
        assert!(!parallel_open_effective(1, u64::MAX));
        assert!(!parallel_open_effective(8, PARALLEL_OPEN_MIN_BYTES - 1));
        assert!(parallel_open_effective(2, PARALLEL_OPEN_MIN_BYTES));
    }

    #[test]
    fn reopened_builtin_policy_routes_new_batches() {
        let store = sharded(3);
        let mut bytes = Vec::new();
        store.write(&mut bytes).unwrap();
        let reopened = ShardedStore::read(&mut bytes.as_slice()).unwrap();
        // A ByTime spec survived the roundtrip, so live ingest works.
        let fx = paper_fixture::build();
        let mut tu = fx.tu.clone();
        tu.id = 77;
        let batch = Dataset {
            name: "late".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![tu],
        };
        let report = reopened.ingest(&batch).unwrap();
        assert_eq!(report.ingested, 1);
        assert_eq!(report.total, 2);
        assert!(reopened.traj_shard(77).is_some());
    }

    #[test]
    fn shards_with_different_networks_rejected() {
        // Same vertex/edge counts, different geometry: a count-only
        // check would let shard 1 silently answer against shard 0's
        // coordinates.
        let blob = |spacing: f64| {
            let net = Arc::new(utcq_network::gen::line(5, spacing));
            let store = StoreBuilder::new(net, CompressParams::default())
                .finish()
                .unwrap();
            let mut b = Vec::new();
            store.write(&mut b).unwrap();
            b
        };
        let mut bytes = Vec::new();
        crate::storage::save_v3(
            crate::storage::ShardDirectory { kind: 0, param: 0 },
            &[blob(100.0), blob(120.0)],
            &mut bytes,
        )
        .unwrap();
        assert!(matches!(
            ShardedStore::read(&mut bytes.as_slice()),
            Err(Error::CorruptStore("shards embed different networks"))
        ));
        // Identical networks still open.
        let mut ok = Vec::new();
        crate::storage::save_v3(
            crate::storage::ShardDirectory { kind: 0, param: 0 },
            &[blob(100.0), blob(100.0)],
            &mut ok,
        )
        .unwrap();
        assert_eq!(
            ShardedStore::read(&mut ok.as_slice())
                .unwrap()
                .shard_count(),
            2
        );
    }

    #[test]
    fn v2_opens_as_single_shard() {
        let (net, ds) = paper_dataset();
        let single = Store::build(
            net,
            &ds,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap();
        let mut bytes = Vec::new();
        single.write(&mut bytes).unwrap();
        let sharded = ShardedStore::read(&mut bytes.as_slice()).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.policy_spec(), None);
        assert_eq!(sharded.len(), single.len());
    }
}
