//! Sharding: N independent [`Store`] partitions behind one query facade.
//!
//! A [`ShardedStore`] owns a set of [`Store`]s and presents the exact
//! `where`/`when`/`range` + pagination surface of a single store (both
//! implement [`QueryTarget`]). Trajectories are routed to partitions at
//! ingest time by a pluggable [`ShardPolicy`] — by time interval
//! ([`ByTime`]) or by road-network region ([`ByRegion`]) — and each
//! partition is a complete, self-contained store: its own compressed
//! dataset, StIU index, query plans and decode cache. Ingest,
//! compression and queries therefore parallelize per shard instead of
//! serializing on one `CompressedDataset`, and each shard is an
//! independently lockable unit for the future `serve` / streaming-ingest
//! paths.
//!
//! # Query execution
//!
//! * **where/when** target a single trajectory: the facade resolves the
//!   owning shard through its id map and delegates — a one-shard
//!   fan-out.
//! * **range** fans out to every shard for *candidates*
//!   (`(id, position)` pairs from each shard's interval index), merges
//!   them into one globally id-ascending sequence, and then evaluates
//!   candidates in that order against their owning shard's engine until
//!   the page limit fills. This reproduces the single store's evaluation
//!   order exactly, so answers and page boundaries are identical.
//! * **par_range_query** pulls whole queries from the same
//!   atomic-counter work queue the single store uses
//!   (`crate::query::par_run`); each worker fans out over shards
//!   *inside* its query, so sharding never multiplies thread pools.
//!
//! Merging moves hit values (`WhereHit`/`WhenHit`/`u64` ids) between
//! pages; decoded artifacts stay behind each shard's cache `Arc`s and
//! are never cloned across the merge.
//!
//! # Cursor encoding
//!
//! Cursors stay opaque `u64`s but are *global*:
//!
//! * **where/when** cursors encode `(shard, local_cursor)` — the owning
//!   shard in the high 16 bits, the shard-local offset cursor in the low
//!   48. A cursor presented to a store whose routing disagrees (or with
//!   a foreign shard tag) fails with [`Error::InvalidCursor`] instead of
//!   silently paginating wrong.
//! * **range** cursors are keyset-style — the last returned trajectory
//!   id, exactly as in the single store. They carry no shard tag, so
//!   range cursors are interchangeable between a [`Store`] and any
//!   [`ShardedStore`] over the same dataset.
//!
//! # Persistence
//!
//! [`ShardedStore::save`] writes a v3 container: a shard directory
//! (policy kind + parameter) followed by one embedded, fully
//! self-contained v2 container per shard (see [`crate::storage`]).
//! [`ShardedStore::open`] reads v3 and also accepts a plain v2 container
//! as a single-shard store; the embedded network is deserialized once
//! and shared across shards behind one `Arc`.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use utcq_network::{EdgeId, Grid, Rect, RoadNetwork};
use utcq_traj::{Dataset, UncertainTrajectory};

use crate::cache::CacheStats;
use crate::error::Error;
use crate::params::CompressParams;
use crate::query::{par_run, Page, PageRequest, QueryTarget, RangeQuery, WhenHit, WhereHit};
use crate::stiu::StiuParams;
use crate::storage::{self, ShardDirectory, POLICY_CUSTOM, POLICY_REGION, POLICY_TIME};
use crate::store::{Store, StoreBuilder};

/// Maximum number of shards a store may have (the shard tag of a
/// where/when cursor is 16 bits).
pub const MAX_SHARDS: u32 = 1 << 16;

/// Bits of a global where/when cursor holding the shard-local cursor.
const LOCAL_CURSOR_BITS: u32 = 48;
const LOCAL_CURSOR_MASK: u64 = (1 << LOCAL_CURSOR_BITS) - 1;

fn encode_cursor(shard: u32, local: u64) -> u64 {
    debug_assert!(local <= LOCAL_CURSOR_MASK, "local cursor overflows 48 bits");
    (u64::from(shard) << LOCAL_CURSOR_BITS) | (local & LOCAL_CURSOR_MASK)
}

fn decode_cursor(global: u64) -> (u32, u64) {
    (
        (global >> LOCAL_CURSOR_BITS) as u32,
        global & LOCAL_CURSOR_MASK,
    )
}

/// Routes trajectories to shards at ingest time.
///
/// A policy must be **deterministic** — the same trajectory must route
/// to the same shard on every call — because duplicate-id detection and
/// the facade's id map rely on a stable placement. Built-in policies
/// ([`ByTime`], [`ByRegion`]) also serialize into the v3 shard
/// directory; custom implementations are recorded as `custom` (the
/// container still opens — querying never routes).
pub trait ShardPolicy: Send + Sync {
    /// The shard (in `0..n_shards`) that should own `tu`.
    fn route(&self, net: &RoadNetwork, tu: &UncertainTrajectory, n_shards: u32) -> u32;

    /// The serializable spec of a built-in policy; `None` for custom
    /// policies.
    fn spec(&self) -> Option<ShardSpec> {
        None
    }
}

/// Serializable description of a built-in [`ShardPolicy`] — what the v3
/// shard directory records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// [`ByTime`] with the given bucket width in seconds.
    ByTime {
        /// Time-bucket width in seconds.
        interval_s: i64,
    },
    /// [`ByRegion`] with the given routing-grid dimension.
    ByRegion {
        /// Routing grid dimension (`grid_n × grid_n` cells).
        grid_n: u32,
    },
}

impl ShardSpec {
    /// Instantiates the policy this spec describes.
    ///
    /// ```
    /// use utcq_core::shard::ShardSpec;
    /// let policy = ShardSpec::ByTime { interval_s: 900 }.policy();
    /// assert_eq!(policy.spec(), Some(ShardSpec::ByTime { interval_s: 900 }));
    /// ```
    pub fn policy(self) -> Arc<dyn ShardPolicy> {
        match self {
            ShardSpec::ByTime { interval_s } => Arc::new(ByTime { interval_s }),
            ShardSpec::ByRegion { grid_n } => Arc::new(ByRegion { grid_n }),
        }
    }

    fn directory(spec: Option<ShardSpec>) -> ShardDirectory {
        match spec {
            Some(ShardSpec::ByTime { interval_s }) => ShardDirectory {
                kind: POLICY_TIME,
                param: interval_s,
            },
            Some(ShardSpec::ByRegion { grid_n }) => ShardDirectory {
                kind: POLICY_REGION,
                param: i64::from(grid_n),
            },
            None => ShardDirectory {
                kind: POLICY_CUSTOM,
                param: 0,
            },
        }
    }

    fn from_directory(dir: ShardDirectory) -> Option<ShardSpec> {
        match dir.kind {
            POLICY_TIME => Some(ShardSpec::ByTime {
                interval_s: dir.param.max(1),
            }),
            POLICY_REGION => Some(ShardSpec::ByRegion {
                grid_n: u32::try_from(dir.param).unwrap_or(1).max(1),
            }),
            _ => None,
        }
    }
}

/// Time-interval routing: trajectories whose first sample falls in the
/// same `interval_s`-second bucket land on the same shard; buckets
/// round-robin across shards, so contiguous time ranges spread evenly.
#[derive(Debug, Clone, Copy)]
pub struct ByTime {
    /// Bucket width in seconds (clamped to ≥ 1).
    pub interval_s: i64,
}

impl Default for ByTime {
    /// Hour-wide buckets.
    fn default() -> Self {
        Self { interval_s: 3600 }
    }
}

impl ShardPolicy for ByTime {
    fn route(&self, _net: &RoadNetwork, tu: &UncertainTrajectory, n_shards: u32) -> u32 {
        let t0 = tu.times.first().copied().unwrap_or(0);
        t0.div_euclid(self.interval_s.max(1))
            .rem_euclid(i64::from(n_shards)) as u32
    }

    fn spec(&self) -> Option<ShardSpec> {
        Some(ShardSpec::ByTime {
            interval_s: self.interval_s,
        })
    }
}

/// Region routing: a coarse `grid_n × grid_n` grid over the network's
/// bounding rectangle; a trajectory lands on the shard of the cell its
/// most probable instance starts in, so trajectories beginning in the
/// same area co-locate.
#[derive(Debug, Clone, Copy)]
pub struct ByRegion {
    /// Routing grid dimension (clamped to ≥ 1). Independent of the StIU
    /// grid — this one only routes.
    pub grid_n: u32,
}

impl Default for ByRegion {
    /// An 8 × 8 routing grid.
    fn default() -> Self {
        Self { grid_n: 8 }
    }
}

impl ShardPolicy for ByRegion {
    fn route(&self, net: &RoadNetwork, tu: &UncertainTrajectory, n_shards: u32) -> u32 {
        if tu.instances.is_empty() {
            return 0;
        }
        let grid = Grid::over_network(net, self.grid_n.max(1));
        let inst = tu.top_instance();
        let loc = inst.location(net, 0);
        let cell = grid.cell_of(net.point_on_edge(loc.edge, loc.ndist));
        cell.0 % n_shards
    }

    fn spec(&self) -> Option<ShardSpec> {
        Some(ShardSpec::ByRegion {
            grid_n: self.grid_n,
        })
    }
}

/// Incremental construction of a [`ShardedStore`] — the sharded
/// counterpart of [`StoreBuilder`], usually reached through
/// [`StoreBuilder::shard_by`].
///
/// Each [`ingest`](Self::ingest) routes the batch's trajectories
/// individually (no payload copies) to per-shard [`StoreBuilder`]s, so
/// only each trajectory's owning shard compresses and indexes it.
pub struct ShardedStoreBuilder {
    net: Arc<RoadNetwork>,
    policy: Arc<dyn ShardPolicy>,
    builders: Vec<StoreBuilder>,
    total_cache_bytes: usize,
}

impl ShardedStoreBuilder {
    /// A sharded builder with `n_shards` partitions routed by `policy`.
    pub fn new(
        net: Arc<RoadNetwork>,
        params: CompressParams,
        policy: Arc<dyn ShardPolicy>,
        n_shards: u32,
    ) -> Result<Self, Error> {
        if n_shards == 0 {
            return Err(Error::ShardConfig("shard count must be at least 1"));
        }
        if n_shards > MAX_SHARDS {
            return Err(Error::ShardConfig("shard count exceeds 65536"));
        }
        let builders = (0..n_shards)
            .map(|_| StoreBuilder::new(net.clone(), params))
            .collect();
        let mut b = Self {
            net,
            policy,
            builders,
            total_cache_bytes: crate::cache::DEFAULT_CACHE_BYTES,
        };
        b.apply_cache_budget();
        Ok(b)
    }

    fn apply_cache_budget(&mut self) {
        let per_shard = self.total_cache_bytes / self.builders.len();
        self.builders = std::mem::take(&mut self.builders)
            .into_iter()
            .map(|sb| sb.cache_bytes(per_shard))
            .collect();
    }

    /// Overrides the *total* decode-cache byte budget; each shard gets
    /// an equal slice (`0` disables caching everywhere).
    pub fn cache_bytes(mut self, total_bytes: usize) -> Self {
        self.total_cache_bytes = total_bytes;
        self.apply_cache_budget();
        self
    }

    /// Overrides the StIU parameters of every shard. Must be called
    /// before the first [`ingest`](Self::ingest) (as with
    /// [`StoreBuilder::stiu_params`]).
    pub fn stiu_params(mut self, p: StiuParams) -> Self {
        self.builders = std::mem::take(&mut self.builders)
            .into_iter()
            .map(|sb| sb.stiu_params(p))
            .collect();
        self
    }

    /// Overrides the dataset label (defaults to the first batch's name).
    pub fn name(mut self, name: &str) -> Self {
        self.builders = std::mem::take(&mut self.builders)
            .into_iter()
            .map(|sb| sb.name(name))
            .collect();
        self
    }

    /// Routes and ingests one batch: each trajectory is compressed and
    /// indexed by its owning shard only.
    pub fn ingest(mut self, batch: &Dataset) -> Result<Self, Error> {
        let n = self.builders.len() as u32;
        for sb in &mut self.builders {
            sb.check_batch(batch)?;
        }
        for tu in &batch.trajectories {
            let shard = self.policy.route(&self.net, tu, n);
            let sb = self
                .builders
                .get_mut(shard as usize)
                .ok_or(Error::ShardConfig("policy routed past the shard count"))?;
            sb.ingest_traj(tu)?;
        }
        Ok(self)
    }

    /// Finalizes every shard and assembles the facade.
    pub fn finish(self) -> Result<ShardedStore, Error> {
        let shards = self
            .builders
            .into_iter()
            .map(StoreBuilder::finish)
            .collect::<Result<Vec<_>, _>>()?;
        ShardedStore::from_shards(shards, self.policy.spec())
    }
}

/// N [`Store`] partitions behind the single-store query surface.
///
/// See the [module docs](self) for execution, cursor and persistence
/// semantics. Equivalence with a single store over the same dataset is
/// asserted by `tests/shard_equivalence.rs`.
///
/// ```
/// use std::sync::Arc;
/// use utcq_core::shard::ByTime;
/// use utcq_core::{CompressParams, PageRequest, QueryTarget, StoreBuilder};
/// # fn main() -> Result<(), utcq_core::Error> {
/// let (net, ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 6, 7);
/// let store = StoreBuilder::new(
///     Arc::new(net),
///     CompressParams::with_interval(ds.default_interval),
/// )
/// .shard_by(Arc::new(ByTime::default()), 3)?
/// .ingest(&ds)?
/// .finish()?;
/// assert_eq!(store.shard_count(), 3);
/// assert_eq!(store.len(), 6);
///
/// // The exact same query surface as a single store.
/// let owner = store.traj_shard(0).unwrap() as usize;
/// let t0 = store.shards()[owner]
///     .decode_times(store.shards()[owner].traj_index(0).unwrap())?[0];
/// let page = store.where_query(0, t0, 0.0, PageRequest::default())?;
/// assert!(!page.items.is_empty());
/// # Ok(()) }
/// ```
pub struct ShardedStore {
    shards: Vec<Store>,
    spec: Option<ShardSpec>,
    /// Trajectory id → owning shard, across all shards.
    id_to_shard: HashMap<u64, u32>,
    /// Whether every shard's StIU grid is the same function (same
    /// network, same `grid_n`) — the normal case, which lets a range
    /// query build its query-cell set once instead of once per shard.
    uniform_grid: bool,
    /// Facade-level range acceleration: the shards' temporal interval
    /// postings merged once at assembly into id-ascending
    /// `(id, shard, position)` lists, so a range query resolves its
    /// global candidate sequence with one lookup and zero sorting
    /// (shards are immutable once assembled). `None` when the shards'
    /// time partitions disagree — then candidates are gathered and
    /// sorted per query.
    range_index: Option<RangeIndex>,
}

/// See [`ShardedStore::range_index`].
struct RangeIndex {
    /// The shards' common temporal partition width.
    partition_s: i64,
    /// Interval key → candidates ascending by trajectory id.
    postings: HashMap<i64, Vec<(u64, u32, u32)>>,
}

impl RangeIndex {
    /// Merges the shards' interval postings; `None` if the partition
    /// widths disagree (their interval keys would be incompatible).
    fn build(shards: &[Store]) -> Option<Self> {
        let partition_s = shards[0].stiu().params.partition_s;
        if shards
            .iter()
            .any(|s| s.stiu().params.partition_s != partition_s)
        {
            return None;
        }
        let mut postings: HashMap<i64, Vec<(u64, u32, u32)>> = HashMap::new();
        for (s, store) in shards.iter().enumerate() {
            for (&key, js) in &store.stiu().interval_trajs {
                let list = postings.entry(key).or_default();
                for &j in js {
                    if let Some(ct) = store.compressed().trajectories.get(j as usize) {
                        list.push((ct.id, s as u32, j));
                    }
                }
            }
        }
        for list in postings.values_mut() {
            list.sort_unstable();
        }
        Some(Self {
            partition_s,
            postings,
        })
    }

    /// The id-ascending candidates at `tq`, resuming past the keyset
    /// cursor `after`.
    fn candidates(&self, tq: i64, after: Option<u64>) -> &[(u64, u32, u32)] {
        let list = self
            .postings
            .get(&tq.div_euclid(self.partition_s))
            .map_or(&[][..], Vec::as_slice);
        let start = match after {
            Some(a) => list.partition_point(|&(id, _, _)| id <= a),
            None => 0,
        };
        &list[start..]
    }
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("trajectories", &self.len())
            .field("policy", &self.spec)
            .finish_non_exhaustive()
    }
}

impl ShardedStore {
    /// Assembles a facade over already-built shards, validating that no
    /// trajectory id appears in two partitions.
    pub fn from_shards(shards: Vec<Store>, spec: Option<ShardSpec>) -> Result<Self, Error> {
        if shards.is_empty() {
            return Err(Error::ShardConfig("shard count must be at least 1"));
        }
        if shards.len() > MAX_SHARDS as usize {
            return Err(Error::ShardConfig("shard count exceeds 65536"));
        }
        let mut id_to_shard = HashMap::with_capacity(shards.iter().map(Store::len).sum());
        for (s, store) in shards.iter().enumerate() {
            for ct in &store.compressed().trajectories {
                if id_to_shard.insert(ct.id, s as u32).is_some() {
                    return Err(Error::DuplicateTrajectory(ct.id));
                }
            }
        }
        let uniform_grid = shards.windows(2).all(|w| {
            Arc::ptr_eq(w[0].network(), w[1].network())
                && w[0].stiu().params.grid_n == w[1].stiu().params.grid_n
        });
        let range_index = RangeIndex::build(&shards);
        Ok(Self {
            shards,
            spec,
            id_to_shard,
            uniform_grid,
            range_index,
        })
    }

    /// Opens a sharded v3 container (or a plain v2 container as a
    /// single-shard store). v1 containers fail with
    /// [`Error::NeedsNetwork`], as with [`Store::open`].
    ///
    /// ```no_run
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// let store = utcq_core::ShardedStore::open("data.utcq")?;
    /// println!("{} shards, policy {:?}", store.shard_count(), store.policy_spec());
    /// # Ok(()) }
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        let f = File::open(path)?;
        Self::read(&mut BufReader::new(f))
    }

    /// Reads a v3 (or v2) container from an arbitrary reader. The
    /// embedded road network is deserialized from the first shard and
    /// shared across all shards behind one `Arc`; the other shards'
    /// embedded copies are validated against it and dropped.
    pub fn read(r: &mut impl Read) -> Result<Self, Error> {
        let (dir, blobs) = match storage::load_v3(r) {
            Ok(parts) => parts,
            Err(storage::StorageError::LegacyVersion) => return Err(Error::NeedsNetwork),
            Err(e) => return Err(e.into()),
        };
        let mut shared_net: Option<Arc<RoadNetwork>> = None;
        let mut shards = Vec::with_capacity(blobs.len());
        for blob in &blobs {
            let (net, cds, stiu) = storage::load_v2(&mut blob.as_slice())?;
            let net = match &shared_net {
                None => {
                    let net = Arc::new(net);
                    shared_net = Some(Arc::clone(&net));
                    net
                }
                Some(first) => {
                    // Full structural comparison: shards assembled from
                    // different networks with coincidentally equal
                    // counts must not silently answer against shard 0's
                    // geometry.
                    if **first != net {
                        return Err(Error::CorruptStore("shards embed different networks"));
                    }
                    Arc::clone(first)
                }
            };
            shards.push(Store::assemble(net, cds, stiu)?);
        }
        let store = Self::from_shards(shards, dir.and_then(ShardSpec::from_directory))?;
        // Per-shard assembly defaults each cache to the full default
        // budget; a sharded store's default is a *total* budget split
        // across shards, matching what the builder configures.
        store.set_cache_bytes(crate::cache::DEFAULT_CACHE_BYTES);
        Ok(store)
    }

    /// Persists the store as a v3 container.
    ///
    /// ```no_run
    /// # fn demo(store: utcq_core::ShardedStore) -> Result<(), utcq_core::Error> {
    /// store.save("sharded.utcq")?;
    /// let reopened = utcq_core::ShardedStore::open("sharded.utcq")?;
    /// assert_eq!(reopened.shard_count(), store.shard_count());
    /// # Ok(()) }
    /// ```
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        let f = File::create(path)?;
        self.write(&mut BufWriter::new(f))
    }

    /// Writes the v3 container to an arbitrary writer.
    pub fn write(&self, w: &mut impl Write) -> Result<(), Error> {
        let mut blobs = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut blob = Vec::new();
            shard.write(&mut blob)?;
            blobs.push(blob);
        }
        storage::save_v3(ShardSpec::directory(self.spec), &blobs, w)?;
        Ok(())
    }

    /// The shard partitions, in directory order.
    pub fn shards(&self) -> &[Store] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing policy recorded for this store (`None` when it was
    /// built with a custom policy or opened from a v2 container).
    pub fn policy_spec(&self) -> Option<ShardSpec> {
        self.spec
    }

    /// The road network, shared by every shard.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        self.shards[0].network()
    }

    /// Total number of trajectories across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Store::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Store::is_empty)
    }

    /// The shard owning trajectory `id`, if ingested.
    pub fn traj_shard(&self, id: u64) -> Option<u32> {
        self.id_to_shard.get(&id).copied()
    }

    /// Component-wise and total compression ratios aggregated across
    /// shards.
    pub fn ratios(&self) -> crate::compress::Ratios {
        let mut raw = utcq_traj::size::SizeBreakdown::default();
        let mut compressed = utcq_traj::size::SizeBreakdown::default();
        for s in &self.shards {
            raw.add(&s.compressed().raw);
            compressed.add(&s.compressed().compressed);
        }
        crate::compress::Ratios::from_sizes(&raw, &compressed)
    }

    /// Translates an incoming global cursor into the owning shard's
    /// local cursor, rejecting cursors minted for a different shard.
    fn local_page(&self, shard: u32, page: PageRequest) -> Result<PageRequest, Error> {
        let cursor = match page.cursor {
            None => None,
            Some(global) => {
                let (tag, local) = decode_cursor(global);
                if tag != shard {
                    return Err(Error::InvalidCursor);
                }
                Some(local)
            }
        };
        Ok(PageRequest {
            limit: page.limit,
            cursor,
        })
    }

    /// Re-tags a shard-local page as a global one. Items are moved, not
    /// cloned — the merge path never copies decoded payloads.
    fn global_page<T>(shard: u32, page: Page<T>) -> Page<T> {
        Page {
            items: page.items,
            next_cursor: page.next_cursor.map(|c| encode_cursor(shard, c)),
            has_more: page.has_more,
        }
    }

    /// Probabilistic **where** query — resolved to the owning shard.
    pub fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        let Some(shard) = self.traj_shard(traj_id) else {
            return Ok(Page::slice(Vec::new(), PageRequest::first(page.limit)));
        };
        let local = self.local_page(shard, page)?;
        let answer = self.shards[shard as usize].where_query(traj_id, t, alpha, local)?;
        Ok(Self::global_page(shard, answer))
    }

    /// Probabilistic **when** query — resolved to the owning shard.
    pub fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        let Some(shard) = self.traj_shard(traj_id) else {
            return Ok(Page::slice(Vec::new(), PageRequest::first(page.limit)));
        };
        let local = self.local_page(shard, page)?;
        let answer = self.shards[shard as usize].when_query(traj_id, edge, rd, alpha, local)?;
        Ok(Self::global_page(shard, answer))
    }

    /// Probabilistic **range** query with fan-out/merge execution:
    /// candidates are gathered from every shard, merged into one
    /// id-ascending sequence, and evaluated in that order until the page
    /// fills — byte-identical answers and page boundaries to a single
    /// store over the same dataset. The keyset cursor (last returned id)
    /// is shard-agnostic.
    pub fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        // Candidates globally ascending by trajectory id (ids are unique
        // across shards, so that is a total order): one lookup in the
        // prebuilt facade index, or a gather-and-sort fallback when the
        // shards' time partitions disagree.
        let gathered;
        let candidates: &[(u64, u32, u32)] = match &self.range_index {
            Some(ri) => ri.candidates(tq, page.cursor),
            None => {
                let mut c: Vec<(u64, u32, u32)> = Vec::new();
                for (s, shard) in self.shards.iter().enumerate() {
                    c.extend(
                        shard
                            .unsorted_range_candidates(tq)
                            .filter(|&(id, _)| page.cursor.is_none_or(|a| id > a))
                            .map(|(id, j)| (id, s as u32, j)),
                    );
                }
                c.sort_unstable();
                gathered = c;
                &gathered
            }
        };
        // One cell set serves every shard when the grids agree (always,
        // for stores built through one builder or reopened from v3);
        // heterogeneous shards fall back to per-shard sets lazily.
        let shared_cells = self.uniform_grid.then(|| self.shards[0].query_cells(re));
        let mut per_shard_cells: Vec<Option<std::collections::HashSet<utcq_network::CellId>>> =
            if shared_cells.is_some() {
                Vec::new()
            } else {
                vec![None; self.shards.len()]
            };
        let limit = page.limit.max(1); // a zero limit could never progress
        let mut items = Vec::new();
        let mut has_more = false;
        for &(id, s, j) in candidates {
            if items.len() >= limit {
                has_more = true;
                break;
            }
            let shard = &self.shards[s as usize];
            let cells = match &shared_cells {
                Some(c) => c,
                None => per_shard_cells[s as usize].get_or_insert_with(|| shard.query_cells(re)),
            };
            if shard.range_matches_at(j, cells, re, tq, alpha)? {
                items.push(id);
            }
        }
        let next_cursor = has_more.then(|| *items.last().expect("limit > 0 implies items"));
        Ok(Page {
            items,
            next_cursor,
            has_more,
        })
    }

    /// Evaluates a batch of **range** queries in parallel, answers
    /// unpaginated and in input order.
    ///
    /// Workers pull whole queries from the one shared atomic-counter
    /// queue (`crate::query::par_run`) and fan out over shards
    /// *inside* the worker — one thread pool total, never one per
    /// shard. Because the answer is unpaginated, candidates are
    /// evaluated in shard-local index order (contiguous per-shard data,
    /// no candidate sort at all) and only the *matching* ids are sorted
    /// — strictly less ordering work than the paginated path pays.
    pub fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // Resolve each query's cell set once when every grid agrees.
        let shared_cells: Option<Vec<std::collections::HashSet<utcq_network::CellId>>> =
            self.uniform_grid.then(|| {
                queries
                    .iter()
                    .map(|q| self.shards[0].query_cells(&q.re))
                    .collect()
            });
        par_run(queries.len(), |qi| {
            let q = &queries[qi];
            let mut hits = Vec::new();
            match &self.range_index {
                // Fast path: the prebuilt candidate list is already
                // id-ascending, so hits come out sorted for free.
                Some(ri) => {
                    // Lazily memoized per shard for the heterogeneous
                    // grid case — never rebuilt per candidate.
                    let mut per_shard_cells: Vec<
                        Option<std::collections::HashSet<utcq_network::CellId>>,
                    > = if shared_cells.is_some() {
                        Vec::new()
                    } else {
                        vec![None; self.shards.len()]
                    };
                    for &(id, s, j) in ri.candidates(q.tq, None) {
                        let shard = &self.shards[s as usize];
                        let cells = match &shared_cells {
                            Some(all) => &all[qi],
                            None => per_shard_cells[s as usize]
                                .get_or_insert_with(|| shard.query_cells(&q.re)),
                        };
                        if shard.range_matches_at(j, cells, &q.re, q.tq, q.alpha)? {
                            hits.push(id);
                        }
                    }
                }
                // Heterogeneous shards: gather per shard, order at the
                // end (ids are unique across shards, and ascending ids
                // match the single store's evaluation order).
                None => {
                    let mut owned_cells = None;
                    for shard in &self.shards {
                        let cells = match &shared_cells {
                            Some(all) => &all[qi],
                            None => owned_cells.insert(shard.query_cells(&q.re)),
                        };
                        for (id, j) in shard.unsorted_range_candidates(q.tq) {
                            if shard.range_matches_at(j, cells, &q.re, q.tq, q.alpha)? {
                                hits.push(id);
                            }
                        }
                    }
                    hits.sort_unstable();
                }
            }
            Ok(hits)
        })
    }

    /// Aggregated decode-cache counters across shards (budget and
    /// footprint are totals).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let st = s.cache_stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
            total.entries += st.entries;
            total.bytes += st.bytes;
            total.budget_bytes += st.budget_bytes;
        }
        total
    }

    /// Splits a *total* byte budget evenly across the shards' decode
    /// caches (`0` disables caching everywhere).
    pub fn set_cache_bytes(&self, total_bytes: usize) {
        let per_shard = total_bytes / self.shards.len();
        for s in &self.shards {
            s.set_cache_bytes(per_shard);
        }
    }

    /// Drops every cached decode in every shard.
    pub fn clear_cache(&self) {
        for s in &self.shards {
            s.clear_cache();
        }
    }
}

impl QueryTarget for ShardedStore {
    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn network(&self) -> &Arc<RoadNetwork> {
        ShardedStore::network(self)
    }

    fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        ShardedStore::where_query(self, traj_id, t, alpha, page)
    }

    fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        ShardedStore::when_query(self, traj_id, edge, rd, alpha, page)
    }

    fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        ShardedStore::range_query(self, re, tq, alpha, page)
    }

    fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        ShardedStore::par_range_query(self, queries)
    }

    fn cache_stats(&self) -> CacheStats {
        ShardedStore::cache_stats(self)
    }

    fn set_cache_bytes(&self, bytes: usize) {
        ShardedStore::set_cache_bytes(self, bytes)
    }

    fn clear_cache(&self) {
        ShardedStore::clear_cache(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utcq_traj::paper_fixture;

    fn paper_dataset() -> (Arc<RoadNetwork>, Dataset) {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        (Arc::new(fx.example.net.clone()), ds)
    }

    fn sharded(n: u32) -> ShardedStore {
        let (net, ds) = paper_dataset();
        StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .stiu_params(StiuParams {
            partition_s: 900,
            grid_n: 4,
        })
        .shard_by(Arc::new(ByTime::default()), n)
        .unwrap()
        .ingest(&ds)
        .unwrap()
        .finish()
        .unwrap()
    }

    #[test]
    fn sharded_store_is_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<ShardedStore>();
        assert_send_sync::<ShardedStoreBuilder>();
    }

    #[test]
    fn cursor_roundtrip() {
        for (shard, local) in [(0u32, 0u64), (1, 7), (65535, LOCAL_CURSOR_MASK)] {
            let g = encode_cursor(shard, local);
            assert_eq!(decode_cursor(g), (shard, local));
        }
    }

    #[test]
    fn routes_are_stable_and_in_range() {
        let (net, ds) = paper_dataset();
        for n in [1u32, 2, 7] {
            for policy in [
                Arc::new(ByTime::default()) as Arc<dyn ShardPolicy>,
                Arc::new(ByRegion::default()),
            ] {
                let a = policy.route(&net, &ds.trajectories[0], n);
                let b = policy.route(&net, &ds.trajectories[0], n);
                assert_eq!(a, b);
                assert!(a < n);
            }
        }
    }

    #[test]
    fn paper_examples_answer_identically_through_shards() {
        let store = sharded(3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.shard_count(), 3);
        let fx = paper_fixture::build();
        let hits = store
            .where_query(1, paper_fixture::hms(5, 21, 25), 0.25, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].loc.edge, fx.example.edge(6, 7));
        let t = paper_fixture::hms(5, 5, 25);
        let all = Rect::new(-10.0, -10.0, 70.0, 10.0);
        assert_eq!(
            store
                .range_query(&all, t, 0.5, PageRequest::all())
                .unwrap()
                .into_items(),
            vec![1]
        );
    }

    #[test]
    fn unknown_id_is_empty_not_an_error() {
        let store = sharded(2);
        let page = store.where_query(99, 0, 0.0, PageRequest::all()).unwrap();
        assert!(page.items.is_empty() && !page.has_more);
    }

    #[test]
    fn foreign_shard_cursor_is_rejected() {
        let store = sharded(2);
        let shard = store.traj_shard(1).unwrap();
        let foreign = encode_cursor(shard + 1, 0);
        let r = store.where_query(
            1,
            paper_fixture::hms(5, 5, 0),
            0.0,
            PageRequest::after(foreign, 2),
        );
        assert!(matches!(r, Err(Error::InvalidCursor)));
    }

    #[test]
    fn zero_shards_rejected() {
        let (net, ds) = paper_dataset();
        let r = StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .shard_by(Arc::new(ByTime::default()), 0);
        assert!(matches!(r, Err(Error::ShardConfig(_))));
        let _ = ds;
    }

    #[test]
    fn shard_by_after_ingest_rejected() {
        let (net, ds) = paper_dataset();
        let b = StoreBuilder::new(
            net,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        )
        .ingest(&ds)
        .unwrap();
        assert!(matches!(
            b.shard_by(Arc::new(ByTime::default()), 2),
            Err(Error::ShardConfig(_))
        ));
    }

    #[test]
    fn v3_roundtrip_through_bytes() {
        let store = sharded(3);
        let mut bytes = Vec::new();
        store.write(&mut bytes).unwrap();
        let reopened = ShardedStore::read(&mut bytes.as_slice()).unwrap();
        assert_eq!(reopened.shard_count(), 3);
        assert_eq!(reopened.len(), store.len());
        assert_eq!(
            reopened.policy_spec(),
            Some(ShardSpec::ByTime { interval_s: 3600 })
        );
        // The shared-network path: every shard holds the same Arc.
        for s in reopened.shards() {
            assert!(Arc::ptr_eq(s.network(), reopened.network()));
        }
        // A single-store open of the same bytes is redirected.
        assert!(matches!(
            Store::read(&mut bytes.as_slice()),
            Err(Error::ShardedContainer)
        ));
    }

    #[test]
    fn shards_with_different_networks_rejected() {
        // Same vertex/edge counts, different geometry: a count-only
        // check would let shard 1 silently answer against shard 0's
        // coordinates.
        let blob = |spacing: f64| {
            let net = Arc::new(utcq_network::gen::line(5, spacing));
            let store = StoreBuilder::new(net, CompressParams::default())
                .finish()
                .unwrap();
            let mut b = Vec::new();
            store.write(&mut b).unwrap();
            b
        };
        let mut bytes = Vec::new();
        crate::storage::save_v3(
            crate::storage::ShardDirectory { kind: 0, param: 0 },
            &[blob(100.0), blob(120.0)],
            &mut bytes,
        )
        .unwrap();
        assert!(matches!(
            ShardedStore::read(&mut bytes.as_slice()),
            Err(Error::CorruptStore("shards embed different networks"))
        ));
        // Identical networks still open.
        let mut ok = Vec::new();
        crate::storage::save_v3(
            crate::storage::ShardDirectory { kind: 0, param: 0 },
            &[blob(100.0), blob(100.0)],
            &mut ok,
        )
        .unwrap();
        assert_eq!(
            ShardedStore::read(&mut ok.as_slice())
                .unwrap()
                .shard_count(),
            2
        );
    }

    #[test]
    fn v2_opens_as_single_shard() {
        let (net, ds) = paper_dataset();
        let single = Store::build(
            net,
            &ds,
            CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
            StiuParams {
                partition_s: 900,
                grid_n: 4,
            },
        )
        .unwrap();
        let mut bytes = Vec::new();
        single.write(&mut bytes).unwrap();
        let sharded = ShardedStore::read(&mut bytes.as_slice()).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.policy_spec(), None);
        assert_eq!(sharded.len(), single.len());
    }
}
