//! Precomputed per-trajectory query plans.
//!
//! The query hot paths used to rediscover the same structural facts on
//! every call: `instance_probs` rebuilt and re-sorted the
//! `(orig_idx, probability)` list, `decode_instance_cached` located an
//! instance's compressed slot with an O(refs + nrefs) linear scan, and
//! `range_matches` re-sorted candidate members by probability for the
//! Lemma 3 early-accept order. A [`TrajPlan`] computes each of those
//! once — at `build`/`open`/`ingest` time — so queries reduce to slice
//! lookups:
//!
//! * [`TrajPlan::slot`] — `orig_idx → ref/nref slot` in O(1);
//! * [`TrajPlan::probs`] — dequantized probabilities in original
//!   instance order (the *where* iteration order);
//! * [`TrajPlan::by_prob_desc`] — instances ordered by descending
//!   probability (the *range* Lemma 3 order; ties broken by `orig_idx`
//!   so answers are deterministic).
//!
//! Plans are validated at construction: every instance must occupy a
//! distinct original position covering `0..instance_count` exactly, which
//! is what the compressor emits. A container violating that is rejected
//! as [`Error::CorruptStore`] when the store is assembled, instead of
//! surfacing mid-query.

use utcq_bitio::pddp::PddpCodec;

use crate::compressed::CompressedTrajectory;
use crate::error::Error;

/// Where an instance lives in the compressed trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Index into [`CompressedTrajectory::refs`].
    Ref(u32),
    /// Index into [`CompressedTrajectory::nrefs`].
    NRef(u32),
}

/// Precomputed lookup tables for one trajectory.
#[derive(Debug, Clone)]
pub struct TrajPlan {
    /// `orig_idx → slot`; dense, one entry per instance.
    slots: Vec<Slot>,
    /// Dequantized probability per `orig_idx` (same indexing as `slots`).
    probs: Vec<f64>,
    /// `(orig_idx, prob)` sorted by probability descending, `orig_idx`
    /// ascending on ties.
    by_prob_desc: Vec<(u32, f64)>,
    /// Sum of all instance probabilities, in original instance order —
    /// an upper bound on any probability mass a range query can
    /// accumulate over this trajectory (the `range_matches` accumulator
    /// sums a subset of these terms). Summing the *maximum* instead
    /// would be unsound: Lemma 3 accumulates several overlapping
    /// instances, so e.g. probs `{0.4, 0.35}` reach 0.75 ≥ α = 0.5
    /// while the max 0.4 alone would prune.
    prob_mass: f64,
}

impl TrajPlan {
    /// Builds the plan for one compressed trajectory, validating that the
    /// original indices are a permutation of `0..instance_count`.
    pub fn build(ct: &CompressedTrajectory, p_codec: &PddpCodec) -> Result<Self, Error> {
        let n = ct.instance_count();
        let mut slots = vec![None; n];
        let mut probs = vec![0.0; n];
        let mut place = |orig_idx: u32, slot: Slot, p_code: u64| -> Result<(), Error> {
            let cell = slots
                .get_mut(orig_idx as usize)
                .ok_or(Error::CorruptStore("instance original index out of range"))?;
            if cell.is_some() {
                return Err(Error::CorruptStore("duplicate instance original index"));
            }
            *cell = Some(slot);
            probs[orig_idx as usize] = p_codec.dequantize(p_code);
            Ok(())
        };
        for (i, r) in ct.refs.iter().enumerate() {
            place(r.orig_idx, Slot::Ref(i as u32), r.p_code)?;
        }
        for (i, nr) in ct.nrefs.iter().enumerate() {
            place(nr.orig_idx, Slot::NRef(i as u32), nr.p_code)?;
        }
        let slots: Vec<Slot> = slots
            .into_iter()
            .collect::<Option<_>>()
            .expect("dense + no duplicates implies every slot filled");
        let mut by_prob_desc: Vec<(u32, f64)> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, p))
            .collect();
        by_prob_desc.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let prob_mass = probs.iter().sum();
        Ok(Self {
            slots,
            probs,
            by_prob_desc,
            prob_mass,
        })
    }

    /// Number of instances covered by the plan.
    pub fn instance_count(&self) -> usize {
        self.slots.len()
    }

    /// The compressed slot of instance `orig_idx`.
    pub fn slot(&self, orig_idx: u32) -> Result<Slot, Error> {
        self.slots
            .get(orig_idx as usize)
            .copied()
            .ok_or(Error::CorruptStore("instance index not in refs or nrefs"))
    }

    /// Dequantized probability of instance `orig_idx`.
    pub fn prob(&self, orig_idx: u32) -> Result<f64, Error> {
        self.probs
            .get(orig_idx as usize)
            .copied()
            .ok_or(Error::CorruptStore("instance index not in refs or nrefs"))
    }

    /// Probabilities in original instance order: `probs()[i]` is the
    /// probability of instance `i`.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// `(orig_idx, prob)` by probability descending (ties: `orig_idx`
    /// ascending).
    pub fn by_prob_desc(&self) -> &[(u32, f64)] {
        &self.by_prob_desc
    }

    /// Σ of all instance probabilities — the range-pruning upper bound.
    /// A range query over this trajectory can never accumulate more
    /// than this mass, so `alpha > prob_mass` (plus float slack) means
    /// the trajectory cannot match, before any decode.
    pub fn prob_mass(&self) -> f64 {
        self.prob_mass
    }
}

/// Builds the plans for every trajectory of a compressed dataset.
pub fn build_plans<'a>(
    trajectories: impl IntoIterator<Item = &'a CompressedTrajectory>,
    p_codec: &PddpCodec,
) -> Result<Vec<TrajPlan>, Error> {
    trajectories
        .into_iter()
        .map(|ct| TrajPlan::build(ct, p_codec))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress_trajectory;
    use crate::params::CompressParams;
    use utcq_traj::paper_fixture;

    fn paper_ct() -> (CompressedTrajectory, CompressParams) {
        let fx = paper_fixture::build();
        let params = CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL);
        let (ct, _) = compress_trajectory(&fx.example.net, &fx.tu, &params).unwrap();
        (ct, params)
    }

    #[test]
    fn plan_covers_every_instance() {
        let (ct, params) = paper_ct();
        let plan = TrajPlan::build(&ct, &params.p_codec()).unwrap();
        assert_eq!(plan.instance_count(), ct.instance_count());
        for (i, r) in ct.refs.iter().enumerate() {
            assert_eq!(plan.slot(r.orig_idx).unwrap(), Slot::Ref(i as u32));
        }
        for (i, nr) in ct.nrefs.iter().enumerate() {
            assert_eq!(plan.slot(nr.orig_idx).unwrap(), Slot::NRef(i as u32));
        }
        assert!(plan.slot(ct.instance_count() as u32).is_err());
    }

    #[test]
    fn probabilities_match_dequantized_codes() {
        let (ct, params) = paper_ct();
        let p_codec = params.p_codec();
        let plan = TrajPlan::build(&ct, &p_codec).unwrap();
        for r in &ct.refs {
            assert_eq!(plan.prob(r.orig_idx).unwrap(), p_codec.dequantize(r.p_code));
        }
        for nr in &ct.nrefs {
            assert_eq!(
                plan.prob(nr.orig_idx).unwrap(),
                p_codec.dequantize(nr.p_code)
            );
        }
    }

    #[test]
    fn by_prob_desc_is_sorted_and_deterministic() {
        let (ct, params) = paper_ct();
        let plan = TrajPlan::build(&ct, &params.p_codec()).unwrap();
        let list = plan.by_prob_desc();
        assert_eq!(list.len(), ct.instance_count());
        for w in list.windows(2) {
            assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "{w:?}"
            );
        }
    }

    #[test]
    fn prob_mass_is_the_sum_of_instance_probs() {
        let (ct, params) = paper_ct();
        let plan = TrajPlan::build(&ct, &params.p_codec()).unwrap();
        let expect: f64 = plan.probs().iter().sum();
        assert_eq!(plan.prob_mass(), expect);
        assert!(plan.prob_mass() > 0.0);
    }

    #[test]
    fn corrupt_indices_are_rejected() {
        let (mut ct, params) = paper_ct();
        let p_codec = params.p_codec();
        // Duplicate an original index.
        let first = ct.refs[0].orig_idx;
        if let Some(nr) = ct.nrefs.first_mut() {
            nr.orig_idx = first;
            assert!(matches!(
                TrajPlan::build(&ct, &p_codec),
                Err(Error::CorruptStore(_))
            ));
        }
        // Out-of-range index.
        let (mut ct2, _) = paper_ct();
        ct2.refs[0].orig_idx = ct2.instance_count() as u32 + 7;
        assert!(matches!(
            TrajPlan::build(&ct2, &p_codec),
            Err(Error::CorruptStore(_))
        ));
    }
}
