//! [`Opened`] — one handle over every container shape.
//!
//! `Store::open` only accepts v2 containers and `ShardedStore::open`
//! only v3/v2; every front end (the CLI, the [`crate::serve`] server,
//! benchmarks) wants to open *a file* and query it without caring which
//! shape is inside. [`Opened`] is that facade: it opens v2 containers as
//! a single [`Store`], v3 containers as a [`ShardedStore`], and
//! implements [`QueryTarget`] by delegation, so a `&Opened` *is* the
//! polymorphic query surface. Legacy v1 containers (no embedded network)
//! open through [`Opened::open_v1`] with the network supplied out of
//! band, exactly like [`Store::open_v1`].
//!
//! The module also owns the **shared presentation layer**:
//! [`InfoReport`] is the one description of a container both the CLI's
//! `utcq info` text output and the serve protocol's `info` response are
//! derived from — the numbers cannot drift between the two because both
//! render the same struct (`tests/serve.rs` additionally diffs the
//! online and offline outputs byte for byte).

use std::path::Path;
use std::sync::Arc;

use utcq_network::{EdgeId, Rect, RoadNetwork};

use crate::cache::CacheStats;
use crate::compress::CompressedDataset;
use crate::error::Error;
use crate::query::{Page, PageRequest, QueryTarget, RangeQuery, WhenHit, WhereHit};
use crate::shard::{ShardSpec, ShardedStore};
use crate::snapshot::Snapshot;
use crate::stiu::StiuParams;
use crate::store::{IngestReport, Store};
use utcq_traj::{Dataset, UncertainTrajectory};

/// A container opened as a queryable target — single-store or sharded.
///
/// Boxed: a `Store` is a few hundred bytes of inline headers, and the
/// enum would otherwise carry the larger variant's size everywhere.
///
/// ```no_run
/// use utcq_core::opened::Opened;
/// use utcq_core::query::{PageRequest, QueryTarget};
///
/// # fn main() -> Result<(), utcq_core::Error> {
/// // v2 and v3 containers open through the same call …
/// let opened = Opened::open("data.utcq")?;
/// // … and answer through the same trait surface.
/// let page = opened.where_query(7, 71_582, 0.25, PageRequest::first(64))?;
/// println!("{} hits", page.items.len());
/// # Ok(()) }
/// ```
pub enum Opened {
    /// A single-partition store (v2 container, or v1 via
    /// [`Opened::open_v1`]).
    Single(Box<Store>),
    /// A sharded store (v3 container).
    Sharded(Box<ShardedStore>),
}

impl std::fmt::Debug for Opened {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Opened::Single(s) => f.debug_tuple("Opened::Single").field(s).finish(),
            Opened::Sharded(s) => f.debug_tuple("Opened::Sharded").field(s).finish(),
        }
    }
}

impl Opened {
    /// Opens a self-contained container of either shape: v2 becomes a
    /// [`Store`], v3 a [`ShardedStore`]. A legacy v1 container fails
    /// with [`Error::NeedsNetwork`] — open those with
    /// [`Opened::open_v1`], which takes the network out of band.
    ///
    /// ```no_run
    /// use utcq_core::QueryTarget as _;
    /// # fn main() -> Result<(), utcq_core::Error> {
    /// let opened = utcq_core::Opened::open("data.utcq")?;
    /// println!("{} trajectories ({})", opened.len(), opened.shape());
    /// # Ok(()) }
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        match Store::open(&path) {
            Ok(store) => Ok(Opened::Single(Box::new(store))),
            Err(Error::ShardedContainer) => {
                ShardedStore::open(&path).map(|s| Opened::Sharded(Box::new(s)))
            }
            Err(e) => Err(e),
        }
    }

    /// Opens a legacy v1 container against an externally supplied
    /// network — the [`Store::open_v1`] compatibility path behind the
    /// facade.
    pub fn open_v1(
        path: impl AsRef<Path>,
        net: Arc<RoadNetwork>,
        stiu_params: StiuParams,
    ) -> Result<Self, Error> {
        Store::open_v1(path, net, stiu_params).map(|s| Opened::Single(Box::new(s)))
    }

    /// The polymorphic query surface (also reachable directly: `Opened`
    /// itself implements [`QueryTarget`] by delegation).
    pub fn target(&self) -> &dyn QueryTarget {
        match self {
            Opened::Single(s) => s.as_ref(),
            Opened::Sharded(s) => s.as_ref(),
        }
    }

    /// One pinned snapshot per underlying partition (one for a single
    /// store), in shard order. Each snapshot is its partition's current
    /// epoch and individually consistent; across partitions the set is
    /// a batch-consistent cut except in the few pointer-swaps while a
    /// concurrent sharded ingest publishes, where an aggregate may
    /// briefly include a batch the facade has not made visible yet
    /// (use [`crate::shard::ShardedStore::save`] for cuts that must be
    /// exact).
    pub fn snapshots(&self) -> Vec<Arc<Snapshot>> {
        match self {
            Opened::Single(s) => vec![s.snapshot()],
            Opened::Sharded(s) => s.shards().iter().map(Store::snapshot).collect(),
        }
    }

    /// Compresses, indexes and publishes one batch into the live store —
    /// [`Store::ingest`] or [`ShardedStore::ingest`] depending on shape.
    /// Serialized through the store's writer lock; queries never block.
    pub fn ingest(&self, batch: &Dataset) -> Result<IngestReport, Error> {
        match self {
            Opened::Single(s) => s.ingest(batch),
            Opened::Sharded(s) => s.ingest(batch),
        }
    }

    /// Opens a container of either shape with a write-ahead log sidecar
    /// — [`Store::open_durable`] or [`ShardedStore::open_durable`]
    /// depending on what the file holds. Logged batches replay on open;
    /// subsequent [`Opened::ingest`] calls log before publishing.
    pub fn open_durable(path: impl AsRef<Path>, cfg: crate::wal::WalConfig) -> Result<Self, Error> {
        let opened = Self::open(&path)?;
        let mut cfg = cfg;
        if cfg.checkpoint_to.is_none() {
            cfg.checkpoint_to = Some(path.as_ref().to_path_buf());
        }
        opened.attach_wal(cfg)?;
        Ok(opened)
    }

    /// Attaches a write-ahead log to the underlying store, replaying any
    /// records already in the file. Returns the replayed batch count.
    pub fn attach_wal(&self, cfg: crate::wal::WalConfig) -> Result<usize, Error> {
        match self {
            Opened::Single(s) => s.attach_wal(cfg),
            Opened::Sharded(s) => s.attach_wal(cfg),
        }
    }

    /// Crash-safe checkpoint of the attached WAL (save + log
    /// truncation); `Ok(None)` when no WAL or target is attached.
    pub fn checkpoint(&self) -> Result<Option<crate::wal::CheckpointReport>, Error> {
        match self {
            Opened::Single(s) => s.checkpoint(),
            Opened::Sharded(s) => s.checkpoint(),
        }
    }

    /// Size of the attached log in bytes; `None` without a WAL.
    pub fn wal_bytes(&self) -> Option<u64> {
        match self {
            Opened::Single(s) => s.wal_bytes(),
            Opened::Sharded(s) => s.wal_bytes(),
        }
    }

    /// Batches published after epoch `from`, from the attached WAL's
    /// in-memory feed; `None` without a WAL (serves the `tail` op).
    pub fn wal_tail(&self, from: u64, max: usize) -> Option<crate::wal::TailRead> {
        match self {
            Opened::Single(s) => s.wal_tail(from, max),
            Opened::Sharded(s) => s.wal_tail(from, max),
        }
    }

    /// WAL-recorded publish epoch of exactly this batch, if any — the
    /// serve layer's idempotent-ingest lookup.
    pub fn wal_dedup(&self, tus: &[UncertainTrajectory]) -> Option<(u64, usize)> {
        match self {
            Opened::Single(s) => s.wal_dedup(tus),
            Opened::Sharded(s) => s.wal_dedup(tus),
        }
    }

    /// The current publish epoch (snapshot epoch of a single store, the
    /// facade epoch of a sharded one) — what a follower resumes from.
    pub fn epoch(&self) -> u64 {
        match self {
            Opened::Single(s) => s.snapshot().epoch(),
            Opened::Sharded(s) => s.facade_epoch(),
        }
    }

    /// The default sample interval the container was compressed with —
    /// what an `ingest` request's trajectories are validated against.
    pub fn default_interval(&self) -> i64 {
        match self {
            Opened::Single(s) => s.params().default_interval,
            Opened::Sharded(s) => s.shards()[0].params().default_interval,
        }
    }

    /// `"single"` or `"sharded"` — the label used by `utcq info` and the
    /// serve protocol's `info` response.
    pub fn shape(&self) -> &'static str {
        match self {
            Opened::Single(_) => "single",
            Opened::Sharded(_) => "sharded",
        }
    }

    /// The shared description of this container — the single source both
    /// the CLI text output and the serve `info` response render from.
    pub fn info(&self) -> InfoReport {
        match self {
            Opened::Single(s) => InfoReport::from_dataset(s.snapshot().compressed()),
            Opened::Sharded(s) => {
                let snaps = self.snapshots();
                let shards = snaps
                    .iter()
                    .map(|snap| ShardInfo {
                        trajectories: snap.len(),
                        ratio: snap.ratios().total,
                    })
                    .collect();
                let mut report = match snaps.first() {
                    Some(snap) => InfoReport::from_dataset(snap.compressed()),
                    None => InfoReport::default(),
                };
                // Totals span every partition, not just shard 0.
                report.trajectories = snaps.iter().map(|snap| snap.len()).sum();
                report.instances = snaps
                    .iter()
                    .flat_map(|snap| snap.compressed().trajectories.iter())
                    .map(|t| t.instance_count())
                    .sum();
                let mut raw = utcq_traj::size::SizeBreakdown::default();
                let mut compressed = utcq_traj::size::SizeBreakdown::default();
                for snap in &snaps {
                    raw.add(&snap.compressed().raw);
                    compressed.add(&snap.compressed().compressed);
                }
                report.raw_kib = raw.total() / 8 / 1024;
                report.compressed_kib = compressed.total() / 8 / 1024;
                report.ratio = s.ratios().total;
                report.sharding = Some(ShardingInfo {
                    policy: policy_label(s.policy_spec()),
                    shards,
                });
                report
            }
        }
    }
}

impl QueryTarget for Opened {
    fn len(&self) -> usize {
        self.target().len()
    }

    fn network(&self) -> &Arc<RoadNetwork> {
        self.target().network()
    }

    fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        self.target().where_query(traj_id, t, alpha, page)
    }

    fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        self.target().when_query(traj_id, edge, rd, alpha, page)
    }

    fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        self.target().range_query(re, tq, alpha, page)
    }

    fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        self.target().par_range_query(queries)
    }

    fn cache_stats(&self) -> CacheStats {
        self.target().cache_stats()
    }

    fn set_cache_bytes(&self, bytes: usize) {
        self.target().set_cache_bytes(bytes)
    }

    fn clear_cache(&self) {
        self.target().clear_cache()
    }
}

/// The human-readable label of a recorded shard policy — `utcq info`'s
/// `policy` field and the serve `info` response both use it.
pub fn policy_label(spec: Option<ShardSpec>) -> String {
    match spec {
        Some(ShardSpec::ByTime { interval_s }) => format!("time(interval_s={interval_s})"),
        Some(ShardSpec::ByRegion { grid_n }) => format!("region(grid_n={grid_n})"),
        None => "custom".to_string(),
    }
}

/// Per-shard occupancy line of an [`InfoReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// Trajectories owned by this shard.
    pub trajectories: usize,
    /// The shard's total compression ratio.
    pub ratio: f64,
}

/// The sharding section of an [`InfoReport`] — present only for v3
/// containers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingInfo {
    /// Routing policy label (see [`policy_label`]).
    pub policy: String,
    /// Per-shard occupancy, in directory order.
    pub shards: Vec<ShardInfo>,
}

/// Everything `utcq info` prints and the serve `info` response carries —
/// derived once from the container, rendered two ways.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InfoReport {
    /// Dataset label recorded in the container.
    pub name: String,
    /// Total trajectories (across shards, for a sharded container).
    pub trajectories: usize,
    /// Total instances across all trajectories.
    pub instances: usize,
    /// Error bound `ηD`.
    pub eta_d: f64,
    /// Error bound `ηp`.
    pub eta_p: f64,
    /// Pivot count used at compression time.
    pub n_pivots: usize,
    /// Uncompressed footprint in KiB.
    pub raw_kib: u64,
    /// Compressed footprint in KiB.
    pub compressed_kib: u64,
    /// Total compression ratio.
    pub ratio: f64,
    /// The sharding section; `None` for single-store containers.
    pub sharding: Option<ShardingInfo>,
}

impl InfoReport {
    /// A report over one compressed dataset (a v1/v2 container, or one
    /// shard of a v3 container before aggregation).
    pub fn from_dataset(cds: &CompressedDataset) -> Self {
        InfoReport {
            name: cds.name.clone(),
            trajectories: cds.trajectories.len(),
            instances: cds
                .trajectories
                .iter()
                .map(|t| t.instance_count())
                .sum::<usize>(),
            eta_d: cds.params.eta_d,
            eta_p: cds.params.eta_p,
            n_pivots: cds.params.n_pivots,
            raw_kib: cds.raw.total() / 8 / 1024,
            compressed_kib: cds.compressed.total() / 8 / 1024,
            ratio: cds.ratios().total,
            sharding: None,
        }
    }

    /// The exact text `utcq info` prints. Kept here — next to the
    /// struct the serve response serializes — so the two presentations
    /// cannot drift apart.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "container: dataset '{}' ({})", self.name, self.shape());
        let _ = writeln!(out, "  trajectories:     {}", self.trajectories);
        let _ = writeln!(out, "  instances:        {}", self.instances);
        let _ = writeln!(
            out,
            "  ηD = {}, ηp = {}, pivots = {}",
            self.eta_d, self.eta_p, self.n_pivots
        );
        let _ = writeln!(out, "  raw:              {} KiB", self.raw_kib);
        let _ = writeln!(out, "  compressed:       {} KiB", self.compressed_kib);
        let _ = writeln!(out, "  ratio:            {:.2}", self.ratio);
        if let Some(sh) = &self.sharding {
            let _ = writeln!(
                out,
                "  shards:           {} (policy {})",
                sh.shards.len(),
                sh.policy
            );
            for (i, s) in sh.shards.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  shard {i}: {} trajectories, ratio {:.2}",
                    s.trajectories, s.ratio
                );
            }
        }
        out
    }

    /// `"single"` or `"sharded"`, matching [`Opened::shape`].
    pub fn shape(&self) -> &'static str {
        if self.sharding.is_some() {
            "sharded"
        } else {
            "single"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompressParams;
    use crate::shard::ByTime;
    use crate::store::StoreBuilder;
    use utcq_traj::{paper_fixture, Dataset};

    fn paper_parts() -> (Arc<RoadNetwork>, Dataset) {
        let fx = paper_fixture::build();
        let ds = Dataset {
            name: "paper".into(),
            default_interval: paper_fixture::DEFAULT_INTERVAL,
            trajectories: vec![fx.tu.clone()],
        };
        (Arc::new(fx.example.net.clone()), ds)
    }

    #[test]
    fn opened_is_send_sync_and_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Opened>();
    }

    #[test]
    fn info_report_matches_shapes() {
        let (net, ds) = paper_parts();
        let params = CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL);
        let single = Store::build(Arc::clone(&net), &ds, params, StiuParams::default()).unwrap();
        let sharded = StoreBuilder::new(Arc::clone(&net), params)
            .shard_by(Arc::new(ByTime::default()), 2)
            .unwrap()
            .ingest(&ds)
            .unwrap()
            .finish()
            .unwrap();
        let a = Opened::Single(Box::new(single));
        let b = Opened::Sharded(Box::new(sharded));
        let (ia, ib) = (a.info(), b.info());
        assert_eq!(ia.shape(), "single");
        assert_eq!(ib.shape(), "sharded");
        assert_eq!(ia.trajectories, ib.trajectories);
        assert_eq!(ia.instances, ib.instances);
        assert_eq!(ib.sharding.as_ref().unwrap().shards.len(), 2);
        assert!(ib
            .sharding
            .as_ref()
            .unwrap()
            .policy
            .starts_with("time(interval_s="));
        let text = ib.render();
        assert!(text.contains("sharded"), "{text}");
        assert!(text.contains("shard 0:"), "{text}");
    }

    #[test]
    fn opened_roundtrips_both_container_shapes() {
        let (net, ds) = paper_parts();
        let params = CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL);
        let dir = std::env::temp_dir();
        let v2 = dir.join("utcq-opened-v2.utcq");
        let v3 = dir.join("utcq-opened-v3.utcq");
        Store::build(Arc::clone(&net), &ds, params, StiuParams::default())
            .unwrap()
            .save(&v2)
            .unwrap();
        StoreBuilder::new(Arc::clone(&net), params)
            .shard_by(Arc::new(ByTime::default()), 3)
            .unwrap()
            .ingest(&ds)
            .unwrap()
            .finish()
            .unwrap()
            .save(&v3)
            .unwrap();
        let a = Opened::open(&v2).unwrap();
        let b = Opened::open(&v3).unwrap();
        assert!(matches!(a, Opened::Single(_)));
        assert!(matches!(b, Opened::Sharded(_)));
        assert_eq!(a.len(), b.len());
        assert_eq!(a.snapshots().len(), 1);
        assert_eq!(b.snapshots().len(), 3);
        std::fs::remove_file(&v2).ok();
        std::fs::remove_file(&v3).ok();
    }

    #[test]
    fn policy_labels() {
        assert_eq!(
            policy_label(Some(ShardSpec::ByTime { interval_s: 120 })),
            "time(interval_s=120)"
        );
        assert_eq!(
            policy_label(Some(ShardSpec::ByRegion { grid_n: 8 })),
            "region(grid_n=8)"
        );
        assert_eq!(policy_label(None), "custom");
    }
}
