//! Audit instrumentation points.
//!
//! The epoch-publish protocol ([`crate::snapshot::Swap`], live ingest,
//! the sharded facade's shards-first-then-facade ordering) is verified
//! by the `utcq_audit` model checker, which needs to pause a thread at
//! every protocol-relevant step and try the interleavings around it.
//! This module is that seam: [`point`] marks each step with a static
//! label.
//!
//! Without the `audit` cargo feature (the default, and what every
//! production artifact builds with) [`point`] is an empty
//! `#[inline(always)]` stub — the hot paths compile exactly as before.
//! With the feature, [`point`] dispatches through a process-global
//! function pointer installed once by the audit driver; unregistered
//! threads (everything outside a model-checking run) still take a
//! single `OnceLock` load and return.
//!
//! Placement rule: a point must never sit inside a held `std` lock. The
//! audit scheduler suspends threads at points; a thread suspended while
//! holding a mutex would deadlock any scheduled thread that takes the
//! same lock. Every `point` call in this crate is therefore placed
//! immediately before or after a critical section, never within one.

#[cfg(feature = "audit")]
mod imp {
    use std::sync::OnceLock;

    static HOOK: OnceLock<fn(&'static str)> = OnceLock::new();

    /// Installs the process-global audit dispatcher. First caller wins;
    /// later calls are ignored (the dispatcher itself decides per
    /// thread whether a point is part of a model-checking run).
    pub fn install(f: fn(&'static str)) {
        let _ = HOOK.set(f);
    }

    /// Marks an instrumentation point named `label`.
    #[inline]
    pub fn point(label: &'static str) {
        if let Some(f) = HOOK.get() {
            f(label);
        }
    }
}

#[cfg(not(feature = "audit"))]
mod imp {
    /// Marks an instrumentation point; compiled to nothing without the
    /// `audit` feature.
    #[inline(always)]
    pub fn point(_label: &'static str) {}
}

#[cfg(feature = "audit")]
pub use imp::install;
pub use imp::point;

use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes copied by publish-path copy-on-write events (see
/// [`crate::chunk`]). Unlike [`point`], this counter is always
/// compiled: it is a single relaxed atomic add on the rare
/// copy-on-write path (at most once per shared structure per publish),
/// and the copy-cost regression test and the `"publish"` bench section
/// read it without the `audit` feature.
static COPIED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Records `bytes` copied out by a copy-on-write event.
#[inline]
pub fn copied(bytes: usize) {
    COPIED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Total copy-on-write bytes recorded since process start. Monotonic;
/// callers measure a region by differencing. The count is a *shallow*
/// per-element estimate (directory entries, not decoded payloads) —
/// proportional to what was copied, which is what the O(batch) publish
/// assertions need.
pub fn copied_bytes() -> u64 {
    COPIED_BYTES.load(Ordering::Relaxed)
}
