//! Multiple-order referential representation — the paper's first
//! future-work direction (§8: "it is of interest to introduce a
//! multiple-order representation that may further improve the
//! compression performance").
//!
//! The shipped format is single-order: every non-reference is factorized
//! directly against a reference. This module generalizes the assignment
//! to *reference chains* of bounded depth — a non-reference may itself
//! represent other instances — and evaluates the resulting footprint, so
//! the `multiorder` experiment can quantify what higher orders buy.
//! Decompression replays chains root-first; queries would pay one extra
//! factor replay per chain level, which is exactly the trade-off the
//! paper defers.

use utcq_bitio::{golomb, width_for_max, BitWriter};
use utcq_network::VertexId;

use crate::factor;
use crate::pivot::{fjd_pair_with, select_pivots, FjdScratch};

/// A depth-bounded reference forest over one trajectory's instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiOrderPlan {
    /// `parent[w]` is the instance `w` is represented against
    /// (`None` for root references).
    pub parents: Vec<Option<usize>>,
    /// Chain depth per instance (roots are 0).
    pub depth: Vec<u32>,
}

impl MultiOrderPlan {
    /// Number of root references.
    pub fn root_count(&self) -> usize {
        self.parents.iter().filter(|p| p.is_none()).count()
    }

    /// Maximum chain depth used.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

/// Greedy depth-bounded assignment: Algorithm 1's loop with the
/// single-order constraint relaxed to `depth ≤ max_order`.
///
/// `max_order = 1` reproduces the paper's Algorithm 1 exactly (a
/// unit test pins this); higher orders let committed non-references
/// acquire children of their own.
pub fn plan(
    seqs: &[Vec<u32>],
    svs: &[VertexId],
    probs: &[f64],
    n_pivots: usize,
    max_order: u32,
) -> MultiOrderPlan {
    let n = seqs.len();
    let mut parents: Vec<Option<usize>> = vec![None; n];
    let mut depth = vec![0u32; n];
    if n < 2 {
        return MultiOrderPlan { parents, depth };
    }
    let (_, reps) = select_pivots(seqs, n_pivots);
    let mut scratch = FjdScratch::default();
    let mut cells: Vec<(f64, usize, usize)> = Vec::new();
    for w in 0..n {
        for v in w + 1..n {
            if svs[w] != svs[v] {
                continue;
            }
            let (mut best_wv, mut best_vw) = (0.0f64, 0.0f64);
            for rep in &reps {
                let (wv, vw) = fjd_pair_with(&rep[w], &rep[v], &mut scratch);
                best_wv = best_wv.max(wv);
                best_vw = best_vw.max(vw);
            }
            if probs[w] * best_wv > 0.0 {
                cells.push((probs[w] * best_wv, w, v));
            }
            if probs[v] * best_vw > 0.0 {
                cells.push((probs[v] * best_vw, v, w));
            }
        }
    }
    cells.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut has_children = vec![false; n];
    for (_, w, v) in cells {
        // v must still be an unrepresented leaf; w's chain must have room.
        if parents[v].is_some() || has_children[v] {
            continue;
        }
        if depth[w] + 1 > max_order {
            continue;
        }
        if w == v {
            continue;
        }
        parents[v] = Some(w);
        depth[v] = depth[w] + 1;
        has_children[w] = true;
    }
    MultiOrderPlan { parents, depth }
}

/// Encoded footprint (bits) of the edge sequences, time flags, and
/// distance codes under a plan: roots pay the reference layout, children
/// pay factor lists against their parent's *reconstructed* data.
pub fn evaluate_bits(
    seqs: &[Vec<u32>],
    trimmed_flags: &[Vec<bool>],
    d_codes: &[Vec<u64>],
    plan: &MultiOrderPlan,
    w_e: u32,
    d_width: u32,
) -> u64 {
    let n = seqs.len();
    let mut total = 0u64;
    for v in 0..n {
        match plan.parents[v] {
            None => {
                total += 32; // start vertex
                total += golomb::unsigned_len(seqs[v].len() as u64) as u64;
                total += seqs[v].len() as u64 * u64::from(w_e);
                total += trimmed_flags[v].len() as u64;
                total += d_codes[v].len() as u64 * u64::from(d_width);
            }
            Some(p) => {
                // Factor streams against the parent (whose own storage is
                // paid at its level). Chain pointers cost one index.
                total += u64::from(width_for_max(n.saturating_sub(1) as u64));
                let ef = factor::factorize_e(&seqs[v], &seqs[p]);
                let mut w = BitWriter::new();
                factor::encode_e(&mut w, &ef, seqs[p].len(), seqs[v].len(), w_e)
                    .expect("in-memory encode");
                total += w.len_bits() as u64;
                let tcom = factor::factorize_t(&trimmed_flags[v], &trimmed_flags[p]);
                let mut w = BitWriter::new();
                factor::encode_t(&mut w, &tcom, trimmed_flags[p].len()).expect("encode");
                total += w.len_bits() as u64;
                let patches = factor::diff_d(&d_codes[v], &d_codes[p]);
                let mut w = BitWriter::new();
                factor::encode_d(&mut w, &patches, d_codes[v].len(), d_width).expect("encode");
                total += w.len_bits() as u64;
            }
        }
    }
    total
}

/// Checks that chain replay reconstructs every sequence exactly
/// (transitively, root-first). Returns the first failing instance.
pub fn verify_lossless(
    seqs: &[Vec<u32>],
    trimmed_flags: &[Vec<bool>],
    plan: &MultiOrderPlan,
) -> Result<(), usize> {
    let n = seqs.len();
    // Process in increasing depth so parents are verified first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| plan.depth[v]);
    for &v in &order {
        if let Some(p) = plan.parents[v] {
            let ef = factor::factorize_e(&seqs[v], &seqs[p]);
            if factor::apply_e(&ef, &seqs[p]) != seqs[v] {
                return Err(v);
            }
            let tcom = factor::factorize_t(&trimmed_flags[v], &trimmed_flags[p]);
            if factor::apply_t(&tcom, &trimmed_flags[p]) != trimmed_flags[v] {
                return Err(v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{assign_roles, Role};

    fn paper_inputs() -> (Vec<Vec<u32>>, Vec<VertexId>, Vec<f64>) {
        (
            vec![
                vec![1, 2, 1, 2, 2, 0, 4, 1, 0],
                vec![1, 1, 1, 2, 2, 0, 4, 1, 0],
                vec![1, 2, 1, 2, 2, 0, 4, 1, 2],
            ],
            vec![VertexId(0); 3],
            vec![0.75, 0.2, 0.05],
        )
    }

    #[test]
    fn order_one_matches_algorithm_one() {
        let (seqs, svs, probs) = paper_inputs();
        let p1 = plan(&seqs, &svs, &probs, 1, 1);
        let roles = assign_roles(&seqs, &svs, &probs, 1);
        for (v, role) in roles.iter().enumerate() {
            match role {
                Role::Reference => assert_eq!(p1.parents[v], None, "instance {v}"),
                Role::NonReference { of } => {
                    assert_eq!(p1.parents[v], Some(*of), "instance {v}")
                }
            }
        }
        assert_eq!(p1.max_depth(), 1);
    }

    #[test]
    fn deeper_orders_reduce_or_match_roots() {
        // A chain-shaped family: each sequence is one edit from the next.
        let mut seqs = vec![vec![1u32, 2, 1, 2, 2, 0, 4, 1, 0]];
        for i in 1..6 {
            let mut s = seqs[i - 1].clone();
            let k = i % s.len();
            s[k] = (s[k] + 1) % 5;
            seqs.push(s);
        }
        let svs = vec![VertexId(0); seqs.len()];
        let probs = vec![1.0 / seqs.len() as f64; seqs.len()];
        let p1 = plan(&seqs, &svs, &probs, 1, 1);
        let p3 = plan(&seqs, &svs, &probs, 1, 3);
        assert!(p3.root_count() <= p1.root_count());
        assert!(p3.max_depth() >= p1.max_depth());
        // Chains stay within bounds and acyclic.
        for v in 0..seqs.len() {
            assert!(p3.depth[v] <= 3);
            let mut cur = v;
            let mut hops = 0;
            while let Some(p) = p3.parents[cur] {
                cur = p;
                hops += 1;
                assert!(hops <= 3, "cycle or over-deep chain");
            }
        }
    }

    #[test]
    fn evaluation_and_losslessness() {
        let (seqs, svs, probs) = paper_inputs();
        let flags: Vec<Vec<bool>> = vec![
            vec![false, true, false, true, true, true, true],
            vec![true, false, false, true, true, true, true],
            vec![false, true, false, true, true, true, true],
        ];
        let d_codes: Vec<Vec<u64>> = vec![
            vec![112, 32, 64, 112, 64, 0, 112],
            vec![112, 32, 64, 112, 64, 0, 112],
            vec![112, 32, 64, 112, 64, 0, 64],
        ];
        for order in 1..=3 {
            let p = plan(&seqs, &svs, &probs, 1, order);
            verify_lossless(&seqs, &flags, &p).unwrap();
            let bits = evaluate_bits(&seqs, &flags, &d_codes, &p, 3, 7);
            assert!(bits > 0);
            // Referential always beats three standalone roots.
            let no_ref = MultiOrderPlan {
                parents: vec![None; 3],
                depth: vec![0; 3],
            };
            let raw_bits = evaluate_bits(&seqs, &flags, &d_codes, &no_ref, 3, 7);
            assert!(bits < raw_bits);
        }
    }

    #[test]
    fn single_instance_plan() {
        let p = plan(&[vec![1, 2, 3]], &[VertexId(0)], &[1.0], 1, 2);
        assert_eq!(p.parents, vec![None]);
        assert_eq!(p.root_count(), 1);
    }
}
