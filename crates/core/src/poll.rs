//! Minimal raw-fd readiness primitives for the event-loop server.
//!
//! [`Poller`] wraps Linux `epoll` and [`Waker`] wraps an `eventfd`,
//! both through hand-declared `extern "C"` prototypes — the workspace
//! builds offline with no async runtime and no `libc` crate, and the
//! serve loop needs exactly four syscalls: create, register, wait,
//! wake. Sockets themselves stay ordinary [`std::net`] types switched
//! to nonblocking mode; only the file descriptors cross this module's
//! boundary (borrowed via [`std::os::fd::AsRawFd`], never owned here,
//! so descriptor lifetime stays with the `TcpStream`/`TcpListener`
//! that owns it).
//!
//! Level-triggered only: the serve loop re-arms interest explicitly
//! per connection state (see `conn.rs`), which keeps the state machine
//! auditable — a readiness bit is never "remembered" by the kernel on
//! our behalf.

use std::io;
use std::os::fd::RawFd;

/// Readable readiness (kernel `EPOLLIN`).
pub const IN: u32 = 0x1;
/// Writable readiness (kernel `EPOLLOUT`).
pub const OUT: u32 = 0x4;
/// Error condition (kernel `EPOLLERR`; always reported, never armed).
pub const ERR: u32 = 0x8;
/// Peer hangup (kernel `EPOLLHUP`; always reported, never armed).
pub const HUP: u32 = 0x10;
/// Peer half-closed its write side (kernel `EPOLLRDHUP`).
pub const RDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness report from [`Poller::wait`] — mirrors the kernel's
/// `struct epoll_event` ABI (packed on x86, naturally aligned
/// elsewhere).
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
#[derive(Clone, Copy)]
pub struct Event {
    events: u32,
    data: u64,
}

impl Event {
    /// An empty slot for the wait buffer.
    pub fn zeroed() -> Event {
        Event { events: 0, data: 0 }
    }

    /// The token the fd was registered under.
    pub fn token(&self) -> u64 {
        self.data
    }

    /// The readiness bits ([`IN`], [`OUT`], [`ERR`], [`HUP`],
    /// [`RDHUP`]).
    pub fn readiness(&self) -> u32 {
        self.events
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An `epoll` instance. Registered fds are identified by caller-chosen
/// `u64` tokens; the poller never owns an fd except its own.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a close-on-exec `epoll` instance.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes a flags int and returns an fd or
        // a negative errno indicator; no memory is exchanged.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = Event {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` is a live, properly laid out epoll_event for the
        // duration of the call; the kernel reads it and does not retain
        // the pointer.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest bits.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest bits of an already registered fd. An empty
    /// interest (`0`) keeps the fd registered but mutes readable /
    /// writable reports (`ERR`/`HUP` still fire).
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Harmless to call for an fd the kernel already
    /// dropped from the set (closing an fd auto-removes it).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, 0, 0) {
            Ok(()) => Ok(()),
            Err(e) if e.raw_os_error() == Some(2) => Ok(()), // ENOENT
            Err(e) => Err(e),
        }
    }

    /// Blocks until at least one registered fd is ready (or `timeout_ms`
    /// elapses; `-1` blocks indefinitely), filling `events` from the
    /// front. Returns how many entries were filled. `EINTR` retries
    /// internally.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        let cap = events.len().min(i32::MAX as usize) as i32;
        if cap == 0 {
            return Ok(0);
        }
        loop {
            // SAFETY: `events` points at `cap` writable Event slots; the
            // kernel fills at most `cap` of them.
            let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), cap, timeout_ms) };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` was returned by epoll_create1 and is closed
        // exactly once, here.
        unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup channel for a blocked [`Poller::wait`]:
/// a nonblocking `eventfd` registered with the poller. Worker threads
/// call [`Waker::wake`]; the loop drains it and re-checks its queues.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a close-on-exec, nonblocking `eventfd` with a zero
    /// counter.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes an initial counter and flags, returns
        // an fd or a negative errno indicator.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with a [`Poller`] (readable whenever the
    /// counter is nonzero).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the fd readable. Nonblocking and idempotent-enough: if the
    /// counter is already saturated the write fails with `EAGAIN`,
    /// which still leaves the fd readable — the wakeup is never lost.
    pub fn wake(&self) {
        let one: u64 = 1;
        let buf = one.to_ne_bytes();
        // SAFETY: writes 8 bytes from a live stack buffer; an eventfd
        // write either consumes exactly 8 or fails.
        unsafe { write(self.fd, buf.as_ptr(), buf.len()) };
    }

    /// Resets the counter so the fd stops reporting readable. Returns
    /// whether any wakeups had been posted since the last drain.
    pub fn drain(&self) -> bool {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        let n = unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
        n == 8
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `fd` was returned by eventfd and is closed exactly
        // once, here.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_a_blocked_wait_across_threads() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 7, IN).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            w.wake();
        });

        let mut events = [Event::zeroed(); 4];
        let n = poller.wait(&mut events, 5_000).unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].readiness() & IN != 0);
        assert!(waker.drain());
        // Drained: an immediate poll reports nothing.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        assert!(!waker.drain());
    }

    #[test]
    fn socket_readiness_tracks_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(served.as_raw_fd(), 42, IN).unwrap();

        let mut events = [Event::zeroed(); 4];
        // Nothing sent yet: no readiness.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        (&client).write_all(b"hello").unwrap();
        let n = poller.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert!(events[0].readiness() & IN != 0);

        // Mute the interest: the pending bytes no longer report.
        poller.modify(served.as_raw_fd(), 42, 0).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        // Re-arm and the level-triggered report returns.
        poller.modify(served.as_raw_fd(), 42, IN).unwrap();
        assert_eq!(poller.wait(&mut events, 2_000).unwrap(), 1);

        let mut buf = [0u8; 8];
        let got = (&served).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"hello");

        poller.remove(served.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }
}
