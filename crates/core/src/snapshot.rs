//! Immutable, epoch-stamped read state — what every query runs on.
//!
//! A [`Snapshot`] is the complete read path of one store partition
//! frozen at a point in time: the compressed dataset, its StIU index,
//! the per-trajectory query plans and the id map, all behind one `Arc`.
//! Snapshots are **immutable** — nothing in this module takes `&mut
//! self` after construction — so an `Arc<Snapshot>` can be handed to any
//! number of query threads, pinned across a paginated walk, or
//! serialized to a container file while a writer publishes newer epochs
//! next to it.
//!
//! # Epoch lifecycle
//!
//! The owning [`crate::store::Store`] keeps the *current* snapshot in a
//! `Swap` — a hand-rolled `ArcSwap` on `Mutex<Arc<Snapshot>>` (the
//! lock is held only for the pointer clone/store, never across a
//! query). A live ingest:
//!
//! 1. takes the store's writer lock (writers serialize; readers never
//!    touch that lock),
//! 2. clones the current snapshot's state into a `PartitionState`,
//!    compresses and indexes the new batch into it — all **off the
//!    query path**,
//! 3. publishes the result as a new `Arc<Snapshot>` with a bumped
//!    epoch.
//!
//! In-flight queries and pinned snapshots keep answering from the epoch
//! they loaded; the next query observes the new one. Ingest only ever
//! *appends* trajectories, so positions, page cursors and range keyset
//! cursors minted against an older epoch remain valid against newer
//! ones.
//!
//! The decode cache is shared across epochs (it lives in the store, and
//! every snapshot holds the same `Arc<DecodeCache>`), but cache keys
//! carry the epoch that minted them: entries of superseded epochs stop
//! hitting immediately and retire through normal LRU eviction — no
//! flush, no cross-epoch aliasing even if a future writer stops being
//! append-only.

use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use utcq_network::{EdgeId, Rect, RoadNetwork};
use utcq_traj::UncertainTrajectory;

use crate::cache::{CacheStats, DecodeCache};
use crate::chunk::{ChunkedVec, SharedIdMap};
use crate::compress::{compress_trajectory, CompressedDataset, Ratios};
use crate::error::Error;
use crate::plan::TrajPlan;
use crate::query::{Page, PageRequest, QueryEngine, QueryTarget, RangeQuery, WhenHit, WhereHit};
use crate::stiu::{Stiu, StiuParams};

/// A hand-rolled `ArcSwap`: the one mutable cell of a live store. The
/// mutex guards only the pointer swap — `load` is a lock + `Arc` clone
/// (tens of nanoseconds), never held across a query or a decode.
///
/// Public so the `utcq_audit` model checker can drive the primitive
/// directly; everything else in the workspace reaches it through
/// [`crate::store::Store`] / [`crate::shard::ShardedStore`].
pub struct Swap<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> Swap<T> {
    /// A swap holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slot: Mutex::new(value),
        }
    }

    /// Adopts the slot even after a panic between lock and unlock: the
    /// guarded state is a single pointer, which a dying writer can
    /// never leave half-swapped.
    fn slot_lock(&self) -> std::sync::MutexGuard<'_, Arc<T>> {
        match self.slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The current value. Cheap and wait-free in practice: the critical
    /// section is a single refcount increment.
    pub fn load(&self) -> Arc<T> {
        crate::hooks::point("swap.load");
        let pinned = Arc::clone(&self.slot_lock());
        crate::hooks::point("swap.loaded");
        pinned
    }

    /// Publishes a new value; readers that already loaded the old one
    /// keep it alive until they drop it.
    pub fn store(&self, value: Arc<T>) {
        crate::hooks::point("swap.store");
        *self.slot_lock() = value;
        crate::hooks::point("swap.stored");
    }
}

/// One immutable epoch of a store partition: compressed dataset + StIU
/// index + query plans + id map, cheaply shareable behind an `Arc`.
///
/// Obtained from [`crate::store::Store::snapshot`]. A pinned snapshot
/// is a *consistent read view*: queries, paginated walks and container
/// writes against it are unaffected by concurrent
/// [`crate::store::Store::ingest`] calls publishing newer epochs.
///
/// ```
/// use std::sync::Arc;
/// use utcq_core::{CompressParams, PageRequest, StiuParams, Store};
/// # fn main() -> Result<(), utcq_core::Error> {
/// # let (net, mut ds) = utcq_datagen::generate(&utcq_datagen::profile::tiny(), 6, 7);
/// # let mut late = ds.clone();
/// # late.trajectories = ds.trajectories.split_off(3);
/// let store = Store::build(Arc::new(net), &ds,
///     CompressParams::with_interval(ds.default_interval), StiuParams::default())?;
/// let pinned = store.snapshot();          // consistent view at epoch 0
/// store.ingest(&late)?;                   // publishes epoch 1
/// assert_eq!(pinned.len(), 3);            // the pinned view is unchanged
/// assert_eq!(store.len(), 6);             // new queries see the new epoch
/// assert_eq!(store.snapshot().epoch(), 1);
/// # Ok(()) }
/// ```
pub struct Snapshot {
    pub(crate) net: Arc<RoadNetwork>,
    pub(crate) cds: CompressedDataset,
    pub(crate) stiu: Stiu,
    pub(crate) id_to_idx: SharedIdMap,
    /// Per-trajectory lookup tables, same order as `cds.trajectories`.
    pub(crate) plans: ChunkedVec<TrajPlan>,
    /// The owning store's decode cache, shared across epochs.
    pub(crate) cache: Arc<DecodeCache>,
    /// Publication counter within the owning store; 0 for the state a
    /// store was built or opened with.
    pub(crate) epoch: u64,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("name", &self.cds.name)
            .field("epoch", &self.epoch)
            .field("trajectories", &self.cds.trajectories.len())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// The publication counter of this snapshot within its store.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The road network the snapshot's trajectories are mapped onto.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// The compressed dataset frozen in this snapshot.
    pub fn compressed(&self) -> &CompressedDataset {
        &self.cds
    }

    /// The StIU index frozen in this snapshot.
    pub fn stiu(&self) -> &Stiu {
        &self.stiu
    }

    /// The per-trajectory query plans frozen in this snapshot — the
    /// facade range index reads each trajectory's pruning bound
    /// ([`TrajPlan::prob_mass`]) from here at build time.
    pub(crate) fn plans(&self) -> &crate::chunk::ChunkedVec<TrajPlan> {
        &self.plans
    }

    /// Component-wise and total compression ratios.
    pub fn ratios(&self) -> Ratios {
        self.cds.ratios()
    }

    /// Number of trajectories in this snapshot.
    pub fn len(&self) -> usize {
        self.cds.trajectories.len()
    }

    /// Whether the snapshot holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.cds.trajectories.is_empty()
    }

    /// Looks up a trajectory's position by id.
    pub fn traj_index(&self, id: u64) -> Option<u32> {
        self.id_to_idx.get(id)
    }

    /// Decodes the full time sequence of the trajectory at position `j`
    /// (memoized in the shared decode cache under this epoch).
    pub fn decode_times(&self, j: u32) -> Result<Arc<Vec<i64>>, Error> {
        let ct = self
            .cds
            .trajectories
            .get(j as usize)
            .ok_or(Error::CorruptStore("trajectory position out of range"))?;
        self.engine().times(j, ct)
    }

    /// Persists this snapshot as a self-contained v2 container — the
    /// checkpoint path of a live store: the write runs entirely on the
    /// frozen state, so a server can keep ingesting while it runs.
    /// Crash-safe: the container lands via tmp file + rename + parent
    /// directory fsync, never as a torn in-place overwrite.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        crate::wal::atomic_write(path.as_ref(), |w| self.write(w))
    }

    /// Writes the v2 container to an arbitrary writer.
    pub fn write(&self, w: &mut impl Write) -> Result<(), Error> {
        crate::storage::save_v2(&self.net, &self.cds, &self.stiu, w)?;
        Ok(())
    }

    pub(crate) fn engine(&self) -> QueryEngine<'_> {
        QueryEngine {
            net: &self.net,
            cds: &self.cds,
            stiu: &self.stiu,
            plans: &self.plans,
            cache: &self.cache,
            epoch: self.epoch,
        }
    }

    /// Probabilistic **where** query (Definition 10) on this snapshot.
    pub fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        let Some(j) = self.traj_index(traj_id) else {
            return Ok(Page::slice(Vec::new(), page));
        };
        Ok(Page::slice(self.engine().where_query(j, t, alpha)?, page))
    }

    /// Probabilistic **when** query (Definition 11) on this snapshot.
    pub fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        let Some(j) = self.traj_index(traj_id) else {
            return Ok(Page::slice(Vec::new(), page));
        };
        Ok(Page::slice(
            self.engine().when_query(j, edge, rd, alpha)?,
            page,
        ))
    }

    /// Probabilistic **range** query (Definition 12) on this snapshot,
    /// ids ascending with keyset pagination. A repeated query shape is
    /// served from the epoch-keyed [`crate::cache::DecodeCache`] range
    /// result (any page of it), after the first unpaginated-to-the-end
    /// scan stores the complete match set.
    pub fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        self.range_query_impl(re, tq, alpha, page, true)
    }

    /// [`Snapshot::range_query`] with the result cache optionally
    /// bypassed: the parallel batch path measures (and pays for) the
    /// scan itself, so it neither reads nor stores whole-shape results.
    fn range_query_impl(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
        use_cache: bool,
    ) -> Result<Page<u64>, Error> {
        if use_cache {
            if let Some(ids) = self.cache.range_result(self.epoch, re, tq, alpha) {
                return Ok(self.page_of_range_result(&ids, tq, page));
            }
        }
        let cells = self.query_cells(re);
        let candidates = self.range_candidates(tq, page.cursor);
        let limit = page.limit.max(1); // a zero limit could never progress
        let mut items = Vec::new();
        let mut has_more = false;
        let engine = self.engine();
        let mut scratch = crate::query::RangeScratch::new();
        for (id, j) in candidates {
            if items.len() >= limit {
                // More *candidates* remain; whether they match is decided
                // when the next page evaluates them.
                has_more = true;
                break;
            }
            // Probability-mass prune: the trajectory cannot accumulate
            // α, so skip the evaluation entirely. The candidate still
            // occupies its slot in the pagination walk — identical page
            // boundaries to evaluating and rejecting it.
            if let Some(plan) = self.plans.get(j as usize) {
                if crate::query::range_pruned(plan.prob_mass(), alpha) {
                    continue;
                }
            }
            if engine.range_matches_with(j, &cells, re, tq, alpha, &mut scratch)? {
                items.push(id);
            }
        }
        // has_more implies the page filled (limit ≥ 1), so `last()` is
        // present — but never worth a panic path.
        let next_cursor = if has_more {
            items.last().copied()
        } else {
            None
        };
        if use_cache && page.cursor.is_none() && !has_more {
            // The scan started at the beginning and consumed every
            // candidate: `items` is the complete match set of the shape.
            self.cache
                .note_range_result(self.epoch, re, tq, alpha, Arc::new(items.clone()));
        }
        Ok(Page {
            items,
            next_cursor,
            has_more,
        })
    }

    /// One page of a cached complete match set, byte-identical to what
    /// the scan path would produce for the same request — including
    /// `has_more`, whose contract is "more *candidates* remain past the
    /// last returned id" (matching or not), probed against the interval
    /// index without evaluating anything.
    fn page_of_range_result(&self, ids: &[u64], tq: i64, page: PageRequest) -> Page<u64> {
        let start = match page.cursor {
            Some(a) => ids.partition_point(|&id| id <= a),
            None => 0,
        };
        let limit = page.limit.max(1);
        // bounds: partition_point returns ≤ ids.len()
        let items: Vec<u64> = ids[start..].iter().take(limit).copied().collect();
        let has_more = items.len() >= limit
            && match items.last() {
                Some(&last) => self.unsorted_range_candidates(tq).any(|(id, _)| id > last),
                None => false,
            };
        let next_cursor = if has_more {
            items.last().copied()
        } else {
            None
        };
        Page {
            items,
            next_cursor,
            has_more,
        }
    }

    /// Evaluates a batch of **range** queries in parallel against this
    /// snapshot (see [`crate::store::Store::par_range_query`]). Scans
    /// unconditionally — the whole-shape result cache is neither read
    /// nor populated, so batch timings measure the scan.
    pub fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        crate::query::par_run(queries.len(), |i| {
            let q = &queries[i]; // bounds: par_run yields i < queries.len()
            self.range_query_impl(&q.re, q.tq, q.alpha, PageRequest::all(), false)
                .map(Page::into_items)
        })
    }

    /// The grid cells of the StIU index overlapping a query region. The
    /// grid is a function of the network bounds and `grid_n` alone, so
    /// shards built with the same parameters agree on cell ids.
    pub(crate) fn query_cells(&self, re: &Rect) -> std::collections::HashSet<utcq_network::CellId> {
        self.stiu.grid.cells_overlapping(re).into_iter().collect()
    }

    /// **range** candidates at `tq` in index order, as `(id, position)`
    /// pairs — the raw interval-index postings. Callers that need the
    /// evaluation order of [`Snapshot::range_query`] sort by id (ids are
    /// unique, so that is a total order); the unpaginated fan-out path
    /// skips the sort and orders only the matches.
    pub(crate) fn unsorted_range_candidates(
        &self,
        tq: i64,
    ) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.stiu
            .trajs_in_interval(tq)
            .into_iter()
            .filter_map(move |j| {
                let ct = self.cds.trajectories.get(j as usize)?;
                Some((ct.id, j))
            })
    }

    /// **range** candidates at `tq`, ascending by trajectory id, resuming
    /// past the keyset cursor `after` — the paginated evaluation order.
    fn range_candidates(&self, tq: i64, after: Option<u64>) -> Vec<(u64, u32)> {
        let mut candidates: Vec<(u64, u32)> = self
            .unsorted_range_candidates(tq)
            .filter(|&(id, _)| after.is_none_or(|a| id > a))
            .collect();
        candidates.sort_unstable();
        candidates
    }

    /// Whether the trajectory at position `j` matches
    /// **range**(RE, tq, α) — the per-candidate evaluation step shared
    /// with the shard fan-out path.
    pub(crate) fn range_matches_at(
        &self,
        j: u32,
        cells: &std::collections::HashSet<utcq_network::CellId>,
        re: &Rect,
        tq: i64,
        alpha: f64,
    ) -> Result<bool, Error> {
        self.engine().range_matches(j, cells, re, tq, alpha)
    }

    /// [`Snapshot::range_matches_at`] against caller-owned scratch —
    /// the sharded batch engine's per-worker allocation reuse.
    pub(crate) fn range_matches_at_with(
        &self,
        j: u32,
        cells: &std::collections::HashSet<utcq_network::CellId>,
        re: &Rect,
        tq: i64,
        alpha: f64,
        scratch: &mut crate::query::RangeScratch,
    ) -> Result<bool, Error> {
        self.engine()
            .range_matches_with(j, cells, re, tq, alpha, scratch)
    }
}

impl QueryTarget for Snapshot {
    fn len(&self) -> usize {
        Snapshot::len(self)
    }

    fn network(&self) -> &Arc<RoadNetwork> {
        Snapshot::network(self)
    }

    fn where_query(
        &self,
        traj_id: u64,
        t: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhereHit>, Error> {
        Snapshot::where_query(self, traj_id, t, alpha, page)
    }

    fn when_query(
        &self,
        traj_id: u64,
        edge: EdgeId,
        rd: f64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<WhenHit>, Error> {
        Snapshot::when_query(self, traj_id, edge, rd, alpha, page)
    }

    fn range_query(
        &self,
        re: &Rect,
        tq: i64,
        alpha: f64,
        page: PageRequest,
    ) -> Result<Page<u64>, Error> {
        Snapshot::range_query(self, re, tq, alpha, page)
    }

    fn par_range_query(&self, queries: &[RangeQuery]) -> Result<Vec<Vec<u64>>, Error> {
        Snapshot::par_range_query(self, queries)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn set_cache_bytes(&self, bytes: usize) {
        self.cache.set_budget(bytes);
    }

    fn clear_cache(&self) {
        self.cache.clear();
    }
}

/// The writer-side, mutable counterpart of a [`Snapshot`]: what a
/// [`crate::store::StoreBuilder`] accumulates batch by batch, and what a
/// live [`crate::store::Store::ingest`] clones out of the current
/// snapshot, extends, and publishes back.
///
/// Both construction paths funnel through [`PartitionState::ingest_traj`],
/// which is why a live-ingested store and an offline
/// `StoreBuilder`-built store over the same batches serialize to
/// byte-identical containers (`tests/live_ingest.rs` asserts this).
pub(crate) struct PartitionState {
    pub(crate) cds: CompressedDataset,
    /// Deferred until the first trajectory so `stiu_params` stays
    /// configurable on an empty builder.
    pub(crate) stiu: Option<Stiu>,
    pub(crate) id_to_idx: SharedIdMap,
    pub(crate) plans: ChunkedVec<TrajPlan>,
}

impl PartitionState {
    /// A fresh, empty state for the given compression parameters.
    pub(crate) fn new(net: &RoadNetwork, params: crate::params::CompressParams) -> Self {
        let w_e = crate::compressed::edge_number_width(net.max_out_degree());
        Self {
            cds: CompressedDataset {
                name: String::new(),
                params,
                w_e,
                trajectories: ChunkedVec::new(),
                compressed: Default::default(),
                raw: Default::default(),
            },
            stiu: None,
            id_to_idx: SharedIdMap::new(),
            plans: ChunkedVec::new(),
        }
    }

    /// Clones a snapshot's frozen state back into mutable form — the
    /// copy-out step of a live ingest (off the query path; readers keep
    /// the snapshot untouched). O(batch), not O(store): every container
    /// is structurally shared ([`crate::chunk`]), so this clone copies
    /// chunk directories and segment pointers only; appending the batch
    /// then copies at most each container's tail chunk once
    /// (copy-on-write), never the sealed ones.
    pub(crate) fn from_snapshot(snap: &Snapshot) -> Self {
        Self {
            cds: snap.cds.clone(),
            stiu: Some(snap.stiu.clone()),
            id_to_idx: snap.id_to_idx.clone(),
            plans: snap.plans.clone(),
        }
    }

    /// Whether any trajectory has been ingested yet.
    pub(crate) fn has_ingested(&self) -> bool {
        !self.cds.trajectories.is_empty()
    }

    /// Compresses and indexes a single trajectory — the shared per-item
    /// step of every ingest path (builder, sharded builder, live store).
    pub(crate) fn ingest_traj(
        &mut self,
        net: &RoadNetwork,
        stiu_params: StiuParams,
        tu: &UncertainTrajectory,
    ) -> Result<(), Error> {
        let params = self.cds.params;
        let stiu = self.stiu.get_or_insert_with(|| Stiu::new(net, stiu_params));
        let p_codec = params.p_codec();
        let j = self.cds.trajectories.len() as u32;
        if self.id_to_idx.contains(tu.id) {
            return Err(Error::DuplicateTrajectory(tu.id));
        }
        let (ct, size) = compress_trajectory(net, tu, &params)?;
        self.cds.compressed.add(&size);
        self.cds.raw.add(&utcq_traj::size::uncompressed_bits(tu));
        stiu.push(net, tu, &ct, &params);
        self.plans.push(TrajPlan::build(&ct, &p_codec)?);
        self.id_to_idx.insert(tu.id, j);
        self.cds.trajectories.push(ct);
        Ok(())
    }

    /// Freezes the state into an immutable snapshot at `epoch`.
    pub(crate) fn into_snapshot(
        self,
        net: Arc<RoadNetwork>,
        stiu_params: StiuParams,
        cache: Arc<DecodeCache>,
        epoch: u64,
    ) -> Snapshot {
        let stiu = match self.stiu {
            Some(s) => s,
            None => Stiu::new(&net, stiu_params),
        };
        Snapshot {
            net,
            cds: self.cds,
            stiu,
            id_to_idx: self.id_to_idx,
            plans: self.plans,
            cache,
            epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_publishes_and_pins() {
        let swap = Swap::new(Arc::new(1u32));
        let pinned = swap.load();
        swap.store(Arc::new(2u32));
        assert_eq!(*pinned, 1, "pinned value survives a publish");
        assert_eq!(*swap.load(), 2, "new loads see the new value");
    }

    #[test]
    fn swap_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Swap<Snapshot>>();
        assert_send_sync::<Snapshot>();
    }
}
