//! Structurally shared containers for O(batch) snapshot publication.
//!
//! A live ingest publishes a new epoch by cloning the current
//! snapshot's state, appending the batch, and swapping the result in
//! (`PartitionState::from_snapshot` in `snapshot.rs`). With plain
//! `Vec`/`HashMap` state, that clone is O(store): every compressed
//! trajectory, query plan, index node and posting list is copied per
//! batch, so publish latency grows with store size. The containers in
//! this module make the clone O(batch) instead:
//!
//! * [`ChunkedVec`] — an append-only vector split into fixed-size
//!   chunks, each behind an `Arc`. Cloning copies only the chunk
//!   *directory* (one pointer per [`CHUNK`] elements); sealed chunks are
//!   shared by pointer across epochs forever. Appending to a shared tail
//!   chunk copies just that tail (≤ `CHUNK - 1` elements) once per
//!   publish — the copy-on-write event.
//! * [`SharedIdMap`] — the `id → position` map as sealed map segments
//!   (one per chunk of trajectories) plus a copy-on-write tail segment.
//! * [`IntervalMap`] — the StIU's `interval → postings` map, segmented
//!   the same way: a batch extends the tail segment without rewriting
//!   the postings of previously sealed chunks, even for hot intervals.
//!
//! All three seal at the *same* trajectory count (a pure function of the
//! element count, never of batch boundaries), so a store grown live, a
//! store built offline and a store loaded from a container agree on the
//! chunk layout. Serialization ([`crate::storage`]) reads the logical
//! sequence through iterators and merged views — containers stay
//! byte-identical to the pre-chunking format; chunking is an in-memory
//! representation only.
//!
//! Every copy-on-write event reports its (shallow) byte count to
//! [`crate::hooks::copied`], which `tests/publish_cost.rs` and the
//! `"publish"` bench section use to prove publish copies stay O(batch).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::bitmap::SegmentBitmap;

/// Elements per sealed chunk. The chunk layout is a pure function of
/// the element count: element `i` lives in chunk `i / CHUNK`, and a
/// chunk seals exactly when element `(k + 1) * CHUNK` arrives — never at
/// a batch boundary — so live-grown, offline-built and loaded stores
/// are structurally identical.
pub const CHUNK: usize = 1024;

/// An append-only vector of `Arc`'d fixed-size chunks. Cloning is
/// O(len / CHUNK) pointer copies; pushing after a clone copies at most
/// the shared tail chunk once (reported to [`crate::hooks::copied`]).
pub struct ChunkedVec<T> {
    /// The chunk directory: all chunks are full ([`CHUNK`] elements)
    /// except possibly the last, which is the append tail.
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T> ChunkedVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        Self {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Chunks a plain vector — the container-load path. The layout is
    /// identical to pushing the elements one by one.
    pub fn from_vec(items: Vec<T>) -> Self {
        let len = items.len();
        let mut chunks = Vec::with_capacity(len.div_ceil(CHUNK));
        let mut it = items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(CHUNK).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(Arc::new(chunk));
        }
        Self { chunks, len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at position `i`, if any.
    pub fn get(&self, i: usize) -> Option<&T> {
        self.chunks.get(i / CHUNK)?.get(i % CHUNK)
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> ChunkedIter<'_, T> {
        ChunkedIter {
            chunks: self.chunks.iter(),
            cur: [].iter(),
        }
    }
}

impl<T: Clone> ChunkedVec<T> {
    /// Appends an element. If the tail chunk is shared with another
    /// epoch, it is copied out first (the per-publish copy-on-write
    /// event, reported to [`crate::hooks::copied`]); sealed chunks are
    /// never touched.
    pub fn push(&mut self, value: T) {
        if self.len.is_multiple_of(CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        let tail_at = self.chunks.len() - 1;
        // bounds: a tail chunk was just ensured above
        let tail = &mut self.chunks[tail_at];
        if Arc::get_mut(tail).is_none() {
            crate::hooks::copied(std::mem::size_of::<T>() * tail.len());
            *tail = Arc::new((**tail).clone());
        }
        if let Some(chunk) = Arc::get_mut(tail) {
            chunk.push(value);
            self.len += 1;
        }
    }
}

impl<T> Default for ChunkedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Clone for ChunkedVec<T> {
    /// Clones the chunk directory only: refcount bumps, no element
    /// copies.
    fn clone(&self) -> Self {
        Self {
            chunks: self.chunks.clone(),
            len: self.len,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ChunkedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for ChunkedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T> std::ops::Index<usize> for ChunkedVec<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        // bounds: same contract as `Vec` indexing — callers index `< len`
        &self.chunks[i / CHUNK][i % CHUNK]
    }
}

/// Iterator over a [`ChunkedVec`]'s elements in order.
pub struct ChunkedIter<'a, T> {
    chunks: std::slice::Iter<'a, Arc<Vec<T>>>,
    cur: std::slice::Iter<'a, T>,
}

impl<'a, T> Iterator for ChunkedIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            if let Some(item) = self.cur.next() {
                return Some(item);
            }
            self.cur = self.chunks.next()?.iter();
        }
    }
}

impl<'a, T> IntoIterator for &'a ChunkedVec<T> {
    type Item = &'a T;
    type IntoIter = ChunkedIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Shallow per-entry cost of an id-map segment, for copy accounting.
const ID_ENTRY_BYTES: usize = std::mem::size_of::<u64>() + std::mem::size_of::<u32>();

/// `trajectory id → position`, as sealed `Arc`'d segments (one per
/// [`CHUNK`] insertions, in lockstep with the trajectory chunks) plus a
/// copy-on-write tail segment. Cloning bumps refcounts; inserting after
/// a clone copies at most the tail segment once.
///
/// Keys must be unique across the whole map (callers reject duplicate
/// trajectory ids before inserting), and exactly one insertion happens
/// per trajectory — that keeps the segment boundaries aligned with the
/// trajectory chunk boundaries.
#[derive(Debug, Clone)]
pub struct SharedIdMap {
    segments: Vec<Arc<HashMap<u64, u32>>>,
    tail: Arc<HashMap<u64, u32>>,
}

impl SharedIdMap {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            segments: Vec::new(),
            tail: Arc::new(HashMap::new()),
        }
    }

    /// The position of trajectory `id`, if present.
    pub fn get(&self, id: u64) -> Option<u32> {
        if let Some(&idx) = self.tail.get(&id) {
            return Some(idx);
        }
        self.segments.iter().rev().find_map(|s| s.get(&id).copied())
    }

    /// Whether trajectory `id` is present.
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Number of entries across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum::<usize>() + self.tail.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() && self.tail.is_empty()
    }

    /// Inserts a (unique) id. Copies the tail segment out first if it is
    /// shared with another epoch, and seals it once it reaches
    /// [`CHUNK`] entries.
    pub fn insert(&mut self, id: u64, idx: u32) {
        if Arc::get_mut(&mut self.tail).is_none() {
            crate::hooks::copied(self.tail.len() * ID_ENTRY_BYTES);
            self.tail = Arc::new((*self.tail).clone());
        }
        if let Some(m) = Arc::get_mut(&mut self.tail) {
            m.insert(id, idx);
        }
        if self.tail.len() == CHUNK {
            let sealed = std::mem::replace(&mut self.tail, Arc::new(HashMap::new()));
            self.segments.push(sealed);
        }
    }
}

impl Default for SharedIdMap {
    fn default() -> Self {
        Self::new()
    }
}

/// One sealed trajectory chunk's interval memberships, as fixed
/// 1024-bit blocks (`interval → SegmentBitmap` over the chunk's local
/// positions). Sealed exactly at the chunk boundary and shared by `Arc`
/// across epochs forever — the bitmap form is built once, at seal time.
#[derive(Debug)]
pub struct SealedIntervals {
    map: HashMap<i64, SegmentBitmap>,
}

impl SealedIntervals {
    /// Converts one chunk's plain posting lists (global positions) into
    /// local-position bitmaps. `base` is the chunk's first global
    /// position.
    fn from_postings(postings: &HashMap<i64, Vec<u32>>, base: u32) -> Self {
        let mut map = HashMap::with_capacity(postings.len());
        for (&key, js) in postings {
            let bm: &mut SegmentBitmap = map.entry(key).or_default();
            for &j in js {
                bm.set(j - base);
            }
        }
        Self { map }
    }

    /// The bitmap of `key`, if any posting landed in this chunk.
    pub fn bitmap(&self, key: i64) -> Option<&SegmentBitmap> {
        self.map.get(&key)
    }

    /// Shallow byte size, for copy accounting.
    fn byte_size(&self) -> usize {
        self.map.len() * (std::mem::size_of::<i64>() + SegmentBitmap::byte_size())
    }
}

/// The StIU's `interval → posting list` map, segmented by trajectory
/// chunk: segment `k` holds the postings of trajectories in chunk `k`.
/// A batch only ever touches the tail segment (copy-on-write, like
/// [`SharedIdMap`]), so the postings of sealed chunks are shared across
/// epochs even for intervals the batch also lands in.
///
/// Sealed segments hold their postings as per-interval
/// [`SegmentBitmap`] blocks ([`SealedIntervals`]): membership tests are
/// O(1), multi-interval candidate generation is word-wide OR instead of
/// sort-merge, and enumeration yields ascending positions by
/// construction. The unsealed tail stays a plain
/// `interval → Vec<global position>` map in insertion order (ascending
/// position). Chaining sealed expansions and the tail yields exactly
/// the ascending-position order a single flat map would hold —
/// [`IntervalMap::postings`] reconstructs it for queries and
/// serialization, so containers stay byte-identical; the bitmap form
/// is in-memory only.
#[derive(Debug, Clone)]
pub struct IntervalMap {
    segments: Vec<Arc<SealedIntervals>>,
    tail: Arc<HashMap<i64, Vec<u32>>>,
}

impl IntervalMap {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            segments: Vec::new(),
            tail: Arc::new(HashMap::new()),
        }
    }

    /// Registers trajectory `j` under every interval in
    /// `first..=last`. Must be called with strictly ascending `j`, once
    /// per trajectory — sealing is driven by `j` so the segment layout
    /// stays a pure function of the trajectory count.
    pub fn register(&mut self, j: u32, first: i64, last: i64) {
        while self.segments.len() < j as usize / CHUNK {
            let base = (self.segments.len() * CHUNK) as u32;
            let sealed = Arc::new(SealedIntervals::from_postings(&self.tail, base));
            crate::hooks::copied(sealed.byte_size());
            self.segments.push(sealed);
            self.tail = Arc::new(HashMap::new());
        }
        if Arc::get_mut(&mut self.tail).is_none() {
            let bytes: usize = self
                .tail
                .values()
                .map(|v| std::mem::size_of::<i64>() + v.len() * std::mem::size_of::<u32>())
                .sum();
            crate::hooks::copied(bytes);
            self.tail = Arc::new((*self.tail).clone());
        }
        if let Some(m) = Arc::get_mut(&mut self.tail) {
            for interval in first..=last {
                m.entry(interval).or_default().push(j);
            }
        }
    }

    /// The merged posting list of `key`, ascending by position — what a
    /// single flat map would hold.
    pub fn postings(&self, key: i64) -> Vec<u32> {
        let mut out = Vec::new();
        for (k, seg) in self.segments.iter().enumerate() {
            if let Some(bm) = seg.bitmap(key) {
                bm.push_positions((k * CHUNK) as u32, &mut out);
            }
        }
        if let Some(v) = self.tail.get(&key) {
            out.extend_from_slice(v);
        }
        out
    }

    /// The merged postings of every interval in `first..=last`,
    /// ascending by position with duplicates removed. Sealed segments
    /// merge with word-wide bitmap OR; the tail's plain lists are
    /// set-unioned. The single-interval case degenerates to
    /// [`IntervalMap::postings`].
    pub fn postings_union(&self, first: i64, last: i64) -> Vec<u32> {
        if first == last {
            return self.postings(first);
        }
        let mut out = Vec::new();
        let mut scratch = SegmentBitmap::new();
        for (k, seg) in self.segments.iter().enumerate() {
            let mut any = false;
            for key in first..=last {
                if let Some(bm) = seg.bitmap(key) {
                    if any {
                        scratch.union_with(bm);
                    } else {
                        scratch = bm.clone();
                        any = true;
                    }
                }
            }
            if any {
                scratch.push_positions((k * CHUNK) as u32, &mut out);
            }
        }
        let sealed_len = out.len();
        for key in first..=last {
            if let Some(v) = self.tail.get(&key) {
                out.extend_from_slice(v);
            }
        }
        // Tail positions all follow the sealed ones; only they can repeat
        // across intervals.
        // bounds: sealed_len was out.len() before the tail pushes
        out[sealed_len..].sort_unstable();
        out.dedup();
        out
    }

    /// Visits every `(interval, global position)` posting — sealed
    /// bitmaps expanded, tail postings in insertion order. The order
    /// within one interval is ascending by position.
    pub fn for_each_posting(&self, mut f: impl FnMut(i64, u32)) {
        let mut scratch = Vec::new();
        for (k, seg) in self.segments.iter().enumerate() {
            for (&key, bm) in &seg.map {
                scratch.clear();
                bm.push_positions((k * CHUNK) as u32, &mut scratch);
                for &j in &scratch {
                    f(key, j);
                }
            }
        }
        for (&key, js) in self.tail.iter() {
            for &j in js {
                f(key, j);
            }
        }
    }

    /// Number of distinct intervals.
    pub fn len(&self) -> usize {
        let mut keys: HashSet<i64> = HashSet::new();
        for seg in &self.segments {
            keys.extend(seg.map.keys());
        }
        keys.extend(self.tail.keys());
        keys.len()
    }

    /// Whether no interval holds any posting.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.map.is_empty()) && self.tail.is_empty()
    }

    /// The distinct intervals, ascending — the deterministic
    /// serialization order.
    pub fn sorted_keys(&self) -> Vec<i64> {
        let mut keys: Vec<i64> = Vec::new();
        for seg in &self.segments {
            keys.extend(seg.map.keys());
        }
        keys.extend(self.tail.keys());
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Rebuilds the segmented form from a flat `interval → postings`
    /// map over `n_trajs` trajectories — the container-load path. The
    /// segment layout matches a live-grown map exactly.
    pub fn from_merged(merged: HashMap<i64, Vec<u32>>, n_trajs: usize) -> Self {
        let tail_seg = if n_trajs == 0 {
            0
        } else {
            (n_trajs - 1) / CHUNK
        };
        let mut maps: Vec<HashMap<i64, Vec<u32>>> = vec![HashMap::new(); tail_seg + 1];
        for (k, js) in merged {
            for j in js {
                let seg = (j as usize / CHUNK).min(tail_seg);
                // bounds: seg is clamped to tail_seg = maps.len() - 1
                maps[seg].entry(k).or_default().push(j);
            }
        }
        let tail = Arc::new(maps.pop().unwrap_or_default());
        Self {
            segments: maps
                .into_iter()
                .enumerate()
                .map(|(k, m)| Arc::new(SealedIntervals::from_postings(&m, (k * CHUNK) as u32)))
                .collect(),
            tail,
        }
    }
}

impl Default for IntervalMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_vec_matches_vec_semantics() {
        let n = 2 * CHUNK + 37;
        let plain: Vec<u32> = (0..n as u32).collect();
        let mut grown = ChunkedVec::new();
        for &x in &plain {
            grown.push(x);
        }
        let converted = ChunkedVec::from_vec(plain.clone());
        assert_eq!(grown.len(), n);
        assert_eq!(grown, converted);
        assert_eq!(grown.iter().copied().collect::<Vec<_>>(), plain);
        assert_eq!(grown.get(0), Some(&0));
        assert_eq!(grown.get(n - 1), Some(&(n as u32 - 1)));
        assert_eq!(grown.get(n), None);
        assert_eq!(grown[CHUNK], CHUNK as u32);
        assert_eq!(grown.chunks.len(), converted.chunks.len());
    }

    #[test]
    fn clone_shares_sealed_chunks_and_cow_copies_the_tail() {
        let mut a = ChunkedVec::from_vec((0..CHUNK as u32 + 10).collect());
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.chunks[0], &b.chunks[0]));
        assert!(Arc::ptr_eq(&a.chunks[1], &b.chunks[1]));
        a.push(9999);
        // The sealed chunk stays shared; the tail was copied out.
        assert!(Arc::ptr_eq(&a.chunks[0], &b.chunks[0]));
        assert!(!Arc::ptr_eq(&a.chunks[1], &b.chunks[1]));
        assert_eq!(b.len(), CHUNK + 10, "the clone is unaffected");
        assert_eq!(a.len(), CHUNK + 11);
        assert_eq!(a[CHUNK + 10], 9999);
    }

    #[test]
    fn shared_id_map_seals_and_resolves() {
        let mut m = SharedIdMap::new();
        let n = CHUNK as u32 + 100;
        for i in 0..n {
            assert!(!m.contains(u64::from(i) * 7));
            m.insert(u64::from(i) * 7, i);
        }
        assert_eq!(m.segments.len(), 1, "one segment sealed at CHUNK");
        assert_eq!(m.len(), n as usize);
        for i in 0..n {
            assert_eq!(m.get(u64::from(i) * 7), Some(i));
        }
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn interval_map_merges_across_segments() {
        let mut grown = IntervalMap::new();
        let n = CHUNK as u32 + 50;
        let mut merged: HashMap<i64, Vec<u32>> = HashMap::new();
        for j in 0..n {
            let (first, last) = (i64::from(j % 5), i64::from(j % 5) + 1);
            grown.register(j, first, last);
            for k in first..=last {
                merged.entry(k).or_default().push(j);
            }
        }
        assert_eq!(grown.segments.len(), 1);
        let rebuilt = IntervalMap::from_merged(merged.clone(), n as usize);
        assert_eq!(rebuilt.segments.len(), grown.segments.len());
        assert_eq!(grown.len(), merged.len());
        assert_eq!(grown.sorted_keys(), rebuilt.sorted_keys());
        for (&k, v) in &merged {
            assert_eq!(&grown.postings(k), v, "interval {k}");
            assert_eq!(&rebuilt.postings(k), v, "interval {k}");
        }
        assert_eq!(grown.postings(999), Vec::<u32>::new());
    }

    #[test]
    fn interval_map_union_matches_per_key_merge() {
        let mut m = IntervalMap::new();
        let n = 2 * CHUNK as u32 + 77;
        for j in 0..n {
            let first = i64::from(j % 7);
            m.register(j, first, first + 2);
        }
        let mut visited: Vec<(i64, u32)> = Vec::new();
        m.for_each_posting(|k, j| visited.push((k, j)));
        for (first, last) in [(0i64, 0i64), (0, 3), (2, 8), (-5, -1), (5, 40)] {
            let mut expect: Vec<u32> = visited
                .iter()
                .filter(|(k, _)| (first..=last).contains(k))
                .map(|&(_, j)| j)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(
                m.postings_union(first, last),
                expect,
                "union {first}..={last}"
            );
        }
    }

    #[test]
    fn interval_map_clone_shares_sealed_segments() {
        let mut a = IntervalMap::new();
        for j in 0..CHUNK as u32 + 10 {
            a.register(j, 0, 0);
        }
        let b = a.clone();
        a.register(CHUNK as u32 + 10, 0, 0);
        assert!(Arc::ptr_eq(&a.segments[0], &b.segments[0]));
        assert_eq!(b.postings(0).len(), CHUNK + 10, "the clone is unaffected");
        assert_eq!(a.postings(0).len(), CHUNK + 11);
    }
}
