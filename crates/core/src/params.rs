//! Compression parameters (the paper's Table 7).

use utcq_bitio::pddp::PddpCodec;

/// Tunable parameters of the UTCQ compressor.
#[derive(Debug, Clone, Copy)]
pub struct CompressParams {
    /// Error bound `ηD` for relative distances (default 1/128).
    pub eta_d: f64,
    /// Error bound `ηp` for probabilities (default 1/512; the paper uses
    /// 1/2048 for HZ because of its larger instance counts).
    pub eta_p: f64,
    /// Number of pivots `n_p` for reference selection (default 1; the
    /// paper uses 2 on DK).
    pub n_pivots: usize,
    /// Default sample interval `Ts` in seconds for SIAR.
    pub default_interval: i64,
}

impl Default for CompressParams {
    fn default() -> Self {
        Self {
            eta_d: 1.0 / 128.0,
            eta_p: 1.0 / 512.0,
            n_pivots: 1,
            default_interval: 10,
        }
    }
}

impl CompressParams {
    /// Parameters with a given default sample interval.
    pub fn with_interval(default_interval: i64) -> Self {
        Self {
            default_interval,
            ..Self::default()
        }
    }

    /// The PDDP codec for relative distances.
    pub fn d_codec(&self) -> PddpCodec {
        PddpCodec::from_error_bound(self.eta_d)
    }

    /// The PDDP codec for probabilities.
    pub fn p_codec(&self) -> PddpCodec {
        PddpCodec::from_error_bound(self.eta_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_widths_match_paper() {
        let p = CompressParams::default();
        assert_eq!(p.d_codec().width(), 7); // ηD = 1/128
        assert_eq!(p.p_codec().width(), 9); // ηp = 1/512
    }

    #[test]
    fn hz_probability_bound() {
        let p = CompressParams {
            eta_p: 1.0 / 2048.0,
            ..CompressParams::default()
        };
        assert_eq!(p.p_codec().width(), 11);
    }
}
