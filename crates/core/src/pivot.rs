//! Pivot selection, pivot representation, and the Fine-grained Jaccard
//! Distance (§4.3, Equations 1–2).
//!
//! To avoid trying every instance as a reference, the paper represents all
//! instances against a few *pivots* with plain `(S, L)` factors and
//! estimates pairwise similarity from those factor lists. Pivots are
//! picked greedily to be far from everything (the instance whose current
//! representation has the most factors).

/// A pivot factor: `Some((s, l))` copies `piv[s..s+l]`; `None` marks an
/// element absent from the pivot (the paper "omit\[s\] the factor but
/// increase\[s\] the number of factors by 1").
pub type PivotFactor = Option<(u32, u32)>;

/// Greedy `(S, L)` factorization of `seq` against `piv`.
pub fn pivot_factorize(seq: &[u32], piv: &[u32]) -> Vec<PivotFactor> {
    let mut factors = Vec::new();
    let mut q = 0usize;
    while q < seq.len() {
        let (s, l) = longest_match(&seq[q..], piv);
        if l == 0 {
            factors.push(None);
            q += 1;
        } else {
            factors.push(Some((s as u32, l as u32)));
            q += l;
        }
    }
    factors
}

fn longest_match(needle: &[u32], hay: &[u32]) -> (usize, usize) {
    if needle.is_empty() {
        return (0, 0);
    }
    let first = needle[0];
    let mut best = (0usize, 0usize);
    for s in 0..hay.len() {
        if hay[s] != first || hay.len() - s <= best.1 {
            continue;
        }
        let mut l = 1usize;
        while l < needle.len() && s + l < hay.len() && hay[s + l] == needle[l] {
            l += 1;
        }
        if l > best.1 {
            best = (s, l);
            if l == needle.len() {
                break;
            }
        }
    }
    best
}

/// The Fine-grained Jaccard Distance `FJD(Tuʲw → Tuʲv, piv)` of Eq. 1.
///
/// `com_w` and `com_v` are the pivot representations of the two instances.
/// Despite the name this is a *similarity* (higher = more similar), exactly
/// as the paper uses it inside the score function.
pub fn fjd(com_w: &[PivotFactor], com_v: &[PivotFactor]) -> f64 {
    let h = com_w.len();
    let h_prime = com_v.len();
    if h == 0 || h_prime == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for f_v in com_v {
        sum += sim(*f_v, com_w);
    }
    sum / h.max(h_prime) as f64
}

/// Both directions of the Fine-grained Jaccard Distance in one overlap
/// pass: returns `(FJD(w → v), FJD(v → w))`.
///
/// Equivalent to calling [`fjd`] twice but shares the O(H·H') interval
/// overlap computation — reference selection evaluates every ordered
/// pair, so this halves the paper's dominant `N²·avg|Com|²` term.
pub fn fjd_pair(com_w: &[PivotFactor], com_v: &[PivotFactor]) -> (f64, f64) {
    let mut scratch = FjdScratch::default();
    fjd_pair_with(com_w, com_v, &mut scratch)
}

/// Reusable buffers for [`fjd_pair_with`] — reference selection calls it
/// for every instance pair, so per-call allocation is worth avoiding.
#[derive(Debug, Default)]
pub struct FjdScratch {
    best_w: Vec<(u32, u32)>,
    best_v: Vec<(u32, u32)>,
}

/// [`fjd_pair`] with caller-provided scratch buffers.
pub fn fjd_pair_with(
    com_w: &[PivotFactor],
    com_v: &[PivotFactor],
    scratch: &mut FjdScratch,
) -> (f64, f64) {
    let h = com_w.len();
    let h_prime = com_v.len();
    if h == 0 || h_prime == 0 {
        return (0.0, 0.0);
    }
    // best_for_v[j] = (overlap, l_other) of com_v[j] against com_w, and
    // symmetrically best_for_w[i].
    scratch.best_v.clear();
    scratch.best_v.resize(h_prime, (0u32, u32::MAX));
    scratch.best_w.clear();
    scratch.best_w.resize(h, (0u32, u32::MAX));
    let best_for_v = &mut scratch.best_v;
    let best_for_w = &mut scratch.best_w;
    for (i, f_w) in com_w.iter().enumerate() {
        let Some((sw, lw)) = *f_w else { continue };
        for (j, f_v) in com_v.iter().enumerate() {
            let Some((sv, lv)) = *f_v else { continue };
            let overlap = (sw + lw).min(sv + lv).saturating_sub(sw.max(sv));
            let bv = &mut best_for_v[j];
            if overlap > bv.0 || (overlap == bv.0 && lw < bv.1) {
                *bv = (overlap, lw);
            }
            let bw = &mut best_for_w[i];
            if overlap > bw.0 || (overlap == bw.0 && lv < bw.1) {
                *bw = (overlap, lv);
            }
        }
    }
    let denom = h.max(h_prime) as f64;
    let mut w_to_v = 0.0;
    for (j, f_v) in com_v.iter().enumerate() {
        let Some((_, lv)) = *f_v else { continue };
        let (overlap, lw) = best_for_v[j];
        if overlap > 0 {
            w_to_v += f64::from(overlap) / f64::from(lw.max(lv));
        }
    }
    let mut v_to_w = 0.0;
    for (i, f_w) in com_w.iter().enumerate() {
        let Some((_, lw)) = *f_w else { continue };
        let (overlap, lv) = best_for_w[i];
        if overlap > 0 {
            v_to_w += f64::from(overlap) / f64::from(lv.max(lw));
        }
    }
    (w_to_v / denom, v_to_w / denom)
}

/// Eq. 2: similarity of one factor of `v` against the whole factor list of
/// `w`: the best interval overlap, normalized by the larger of the two
/// factor lengths (with the paper's minimum-tie-break on `L_w`).
fn sim(f_v: PivotFactor, com_w: &[PivotFactor]) -> f64 {
    let Some((sv, lv)) = f_v else { return 0.0 };
    let mut best_overlap = 0u32;
    let mut l_w_max = u32::MAX;
    for f_w in com_w {
        let Some((sw, lw)) = *f_w else { continue };
        let overlap = (sw + lw).min(sv + lv).saturating_sub(sw.max(sv));
        if overlap > best_overlap || (overlap == best_overlap && lw < l_w_max) {
            best_overlap = overlap;
            l_w_max = lw;
        }
    }
    if best_overlap == 0 {
        return 0.0;
    }
    f64::from(best_overlap) / f64::from(l_w_max.max(lv))
}

/// Pivot selection (§4.3): returns the chosen pivot indices and, per
/// pivot, the representation of every instance against it.
pub fn select_pivots(
    seqs: &[Vec<u32>],
    n_pivots: usize,
) -> (Vec<usize>, Vec<Vec<Vec<PivotFactor>>>) {
    let n = seqs.len();
    if n == 0 || n_pivots == 0 {
        return (Vec::new(), Vec::new());
    }
    let n_pivots = n_pivots.min(n);
    let mut chosen: Vec<usize> = Vec::with_capacity(n_pivots);
    let mut reps: Vec<Vec<Vec<PivotFactor>>> = Vec::with_capacity(n_pivots);
    // Step i: seed with instance 0 and represent everything against it.
    let mut current: Vec<Vec<PivotFactor>> =
        seqs.iter().map(|s| pivot_factorize(s, &seqs[0])).collect();
    for _ in 0..n_pivots {
        // Step ii: the instance with the most factors is farthest away.
        let cand = (0..n)
            .filter(|w| !chosen.contains(w))
            .max_by_key(|&w| (current[w].len(), std::cmp::Reverse(w)))
            .expect("n_pivots <= n");
        chosen.push(cand);
        // Step iii: re-represent everything against the new pivot.
        current = seqs
            .iter()
            .map(|s| pivot_factorize(s, &seqs[cand]))
            .collect();
        reps.push(current.clone());
    }
    (chosen, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The running example's edge sequences (Table 3).
    fn e11() -> Vec<u32> {
        vec![1, 2, 1, 2, 2, 0, 4, 1, 0]
    }
    fn e12() -> Vec<u32> {
        vec![1, 1, 1, 2, 2, 0, 4, 1, 0]
    }
    fn e13() -> Vec<u32> {
        vec![1, 2, 1, 2, 2, 0, 4, 1, 2]
    }

    #[test]
    fn paper_pivot_representations() {
        // §4.3: with piv₁ = Tu¹₃, Com_E(Tu¹₁, piv₁) = ⟨(0,8),(5,1)⟩ and
        // Com_E(Tu¹₂, piv₁) = ⟨(0,1),(0,1),(2,6),(5,1)⟩.
        let piv = e13();
        assert_eq!(
            pivot_factorize(&e11(), &piv),
            vec![Some((0, 8)), Some((5, 1))]
        );
        assert_eq!(
            pivot_factorize(&e12(), &piv),
            vec![Some((0, 1)), Some((0, 1)), Some((2, 6)), Some((5, 1))]
        );
    }

    #[test]
    fn absent_symbols_become_none() {
        let piv = e13();
        let seq = vec![9, 1, 2];
        let f = pivot_factorize(&seq, &piv);
        assert_eq!(f[0], None);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn example1_fjd_value() {
        // Example 1: FJD(Tu¹₁ → Tu¹₂, piv₁) = (1/8 + 1/8 + 3/4 + 1)/4 = 1/2.
        let piv = e13();
        let com_w = pivot_factorize(&e11(), &piv);
        let com_v = pivot_factorize(&e12(), &piv);
        let d = fjd(&com_w, &com_v);
        assert!((d - 0.5).abs() < 1e-12, "fjd={d}");
    }

    #[test]
    fn fjd_with_itself_is_high() {
        let piv = e13();
        let com = pivot_factorize(&e11(), &piv);
        assert!(fjd(&com, &com) > 0.9);
    }

    #[test]
    fn fjd_motivating_example() {
        // §4.3: plain Jaccard calls Com(Tu¹₁) = ⟨(0,8),(5,1)⟩ and
        // Com(Tu¹₅) = ⟨(0,7)⟩ completely dissimilar; FJD must not.
        let com_w = vec![Some((0u32, 8u32)), Some((5, 1))];
        let com_v = vec![Some((0u32, 7u32))];
        let d = fjd(&com_w, &com_v);
        assert!(d > 0.4, "fjd={d}");
    }

    #[test]
    fn fjd_empty_inputs() {
        assert_eq!(fjd(&[], &[Some((0, 1))]), 0.0);
        assert_eq!(fjd(&[Some((0, 1))], &[]), 0.0);
        assert_eq!(fjd(&[None], &[None]), 0.0);
    }

    #[test]
    fn pivot_selection_prefers_distant_instances() {
        let seqs = vec![e11(), e12(), e13()];
        let (pivots, reps) = select_pivots(&seqs, 1);
        // Against the seed Tu¹₁, Tu¹₂ has 3 factors and Tu¹₃ has 2, so
        // Tu¹₂ becomes the pivot.
        assert_eq!(pivots, vec![1]);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].len(), 3);
        // The pivot represents itself with a single factor.
        assert_eq!(reps[0][1], vec![Some((0, 9))]);
    }

    #[test]
    fn multiple_pivots_are_distinct() {
        let seqs = vec![e11(), e12(), e13(), vec![7, 7, 7], vec![1, 2]];
        let (pivots, reps) = select_pivots(&seqs, 3);
        assert_eq!(pivots.len(), 3);
        let unique: std::collections::HashSet<_> = pivots.iter().collect();
        assert_eq!(unique.len(), 3);
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn pivot_count_clamps_to_instances() {
        let seqs = vec![e11()];
        let (pivots, _) = select_pivots(&seqs, 5);
        assert_eq!(pivots, vec![0]);
        let (pivots, reps) = select_pivots(&[], 2);
        assert!(pivots.is_empty() && reps.is_empty());
    }

    #[test]
    fn factorization_roundtrip_property() {
        // Replaying pivot factors (with Nones standing for the original
        // symbol) reproduces the sequence lengths.
        let piv = e13();
        for seq in [e11(), e12(), vec![4, 4, 0, 1], vec![2; 12]] {
            let f = pivot_factorize(&seq, &piv);
            let total: usize = f.iter().map(|x| x.map_or(1, |(_, l)| l as usize)).sum();
            assert_eq!(total, seq.len());
        }
    }
}
