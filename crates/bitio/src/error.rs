use std::fmt;

/// Errors produced by the codecs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A read ran past the end of the bit stream.
    UnexpectedEnd {
        /// Bit position at which the read was attempted.
        pos: usize,
        /// Total length of the stream in bits.
        len: usize,
    },
    /// A width argument exceeded the supported 64 bits.
    WidthTooLarge(u32),
    /// A variable-length code was malformed (e.g. an Exp-Golomb prefix
    /// longer than any encodable value).
    Malformed(&'static str),
    /// A value does not fit the declared width.
    ValueOutOfRange {
        /// The offending value.
        value: u64,
        /// The width it was supposed to fit in.
        width: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { pos, len } => {
                write!(f, "bit stream ended: read at bit {pos} of {len}")
            }
            CodecError::WidthTooLarge(w) => write!(f, "bit width {w} exceeds 64"),
            CodecError::Malformed(what) => write!(f, "malformed code: {what}"),
            CodecError::ValueOutOfRange { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
        }
    }
}

impl std::error::Error for CodecError {}
