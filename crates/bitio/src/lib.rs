//! Bit-level codecs for the UTCQ reproduction.
//!
//! This crate provides the low-level encoding substrate that both the UTCQ
//! framework (`utcq-core`) and the TED baseline (`utcq-ted`) are built on:
//!
//! * [`BitWriter`] / [`BitReader`] / [`BitBuf`] — MSB-first bit streams with
//!   random access, so indexes can store *bit positions* into compressed
//!   streams and decompression can start mid-stream (the paper's `t.pos`,
//!   `d.pos`, and `ma.pos` pointers).
//! * [`golomb`] — standard Exp-Golomb (k = 0) codes plus the paper's
//!   *improved* signed Exp-Golomb code for sample-interval deviations
//!   (§4.4 of the paper).
//! * [`pddp`] — the distance-preserving fixed-error float code used for
//!   relative distances and probabilities (the PDDP encoding of TED,
//!   reused by UTCQ with error bounds `ηD` and `ηp`).
//! * [`wah`] — Word-Aligned Hybrid bitmap compression (reference \[33\] of
//!   the paper), used by the TED baseline's time-flag path and by
//!   ablations.
//! * [`huffman`] — canonical Huffman codes, the ablation stand-in for
//!   TED's (unpublished) PDDP-tree dictionary over distance values.
//!
//! All codecs are lossless round-trips except [`pddp`], which is lossy with
//! a caller-chosen error bound — exactly the paper's single lossy component.

mod buf;
mod error;
pub mod golomb;
pub mod huffman;
pub mod pddp;
pub mod wah;

pub use buf::{BitBuf, BitReader, BitWriter};
pub use error::CodecError;

/// Number of bits needed to represent every value in `0..=max`.
///
/// Returns at least 1, so a width is always a valid argument to
/// [`BitWriter::write_bits`].
///
/// ```
/// use utcq_bitio::width_for_max;
/// assert_eq!(width_for_max(0), 1);
/// assert_eq!(width_for_max(1), 1);
/// assert_eq!(width_for_max(7), 3);
/// assert_eq!(width_for_max(8), 4);
/// ```
#[inline]
pub fn width_for_max(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_max_boundaries() {
        assert_eq!(width_for_max(0), 1);
        assert_eq!(width_for_max(1), 1);
        assert_eq!(width_for_max(2), 2);
        assert_eq!(width_for_max(3), 2);
        assert_eq!(width_for_max(4), 3);
        assert_eq!(width_for_max(255), 8);
        assert_eq!(width_for_max(256), 9);
        assert_eq!(width_for_max(u64::MAX), 64);
    }

    #[test]
    fn width_covers_all_values() {
        for max in [0u64, 1, 5, 16, 100, 1023, 1024] {
            let w = width_for_max(max);
            assert!(u128::from(max) < (1u128 << w));
        }
    }
}
