//! PDDP: the distance-preserving fixed-error code for floats in `[0, 1)`.
//!
//! The paper (following TED \[40\]) encodes a relative distance
//! `rd ∈ [0, 1)` as the shortest binary expansion whose value is within an
//! error bound `η` of `rd`, i.e. a fixed number of fractional bits
//! `I = ⌈log2(1/η)⌉`. The same code compresses instance probabilities with
//! bound `ηp`. This is the *only lossy* component of the whole framework.
//!
//! The paper's own arithmetic fixes the per-value cost at exactly `I` bits
//! (`D` ratio `64/7 = 9.143` at `ηD = 1/128`; `p` ratio `64/9 = 7.111` at
//! `ηp = 1/512`), which this codec reproduces: values are quantized to
//! `round(x · 2^I)` and stored in `I` bits. Rounding keeps the error at
//! `2^{-(I+1)} ≤ η/2`, comfortably inside the bound.

use crate::{BitReader, BitWriter, CodecError};

/// Fixed-width quantizing codec for floats in `[0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PddpCodec {
    width: u32,
}

impl PddpCodec {
    /// Builds a codec from an error bound `η ∈ (0, 1)`.
    ///
    /// The width is `⌈log2(1/η)⌉` bits, matching the paper's defaults:
    /// `η = 1/128 → 7` bits, `η = 1/512 → 9` bits, `η = 1/2048 → 11` bits.
    pub fn from_error_bound(eta: f64) -> Self {
        assert!(eta > 0.0 && eta < 1.0, "error bound must be in (0,1)");
        let width = (1.0 / eta).log2().ceil() as u32;
        Self {
            width: width.clamp(1, 52),
        }
    }

    /// Builds a codec with an explicit bit width.
    pub fn with_width(width: u32) -> Self {
        assert!((1..=52).contains(&width), "width must be in 1..=52");
        Self { width }
    }

    /// Bits each encoded value occupies.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Maximum absolute error the codec introduces.
    pub fn max_error(&self) -> f64 {
        // Values are rounded to the nearest multiple of 2^-width; the last
        // representable point is (2^w − 1)/2^w, so values near 1.0 clamp and
        // may deviate by a full step.
        1.0 / f64::from(1u32 << self.width.min(31))
    }

    /// Quantizes `x ∈ [0, 1)` to its code word.
    #[inline]
    pub fn quantize(&self, x: f64) -> u64 {
        debug_assert!((0.0..=1.0).contains(&x), "pddp input {x} outside [0,1]");
        let scale = (1u64 << self.width) as f64;
        let q = (x * scale).round() as u64;
        q.min((1u64 << self.width) - 1)
    }

    /// Reconstructs the float for a code word.
    #[inline]
    pub fn dequantize(&self, q: u64) -> f64 {
        q as f64 / (1u64 << self.width) as f64
    }

    /// Encodes one value into a bit stream.
    pub fn encode(&self, w: &mut BitWriter, x: f64) -> Result<(), CodecError> {
        w.write_bits(self.quantize(x), self.width)
    }

    /// Decodes one value from a bit stream.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<f64, CodecError> {
        Ok(self.dequantize(r.read_bits(self.width)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_widths() {
        assert_eq!(PddpCodec::from_error_bound(1.0 / 128.0).width(), 7);
        assert_eq!(PddpCodec::from_error_bound(1.0 / 512.0).width(), 9);
        assert_eq!(PddpCodec::from_error_bound(1.0 / 2048.0).width(), 11);
        assert_eq!(PddpCodec::from_error_bound(1.0 / 8.0).width(), 3);
    }

    #[test]
    fn error_within_bound() {
        for &eta in &[1.0 / 8.0, 1.0 / 64.0, 1.0 / 128.0, 1.0 / 2048.0] {
            let codec = PddpCodec::from_error_bound(eta);
            for i in 0..1000 {
                let x = i as f64 / 1000.0;
                let back = codec.dequantize(codec.quantize(x));
                assert!((back - x).abs() <= eta, "eta={eta} x={x} back={back}");
            }
        }
    }

    #[test]
    fn roundtrip_via_stream() {
        let codec = PddpCodec::from_error_bound(1.0 / 128.0);
        let values = [0.0, 0.875, 0.25, 0.5, 0.9999, 0.013];
        let mut w = BitWriter::new();
        for &v in &values {
            codec.encode(&mut w, v).unwrap();
        }
        let buf = w.finish();
        assert_eq!(buf.len_bits(), values.len() * 7);
        let mut r = buf.reader();
        for &v in &values {
            let got = codec.decode(&mut r).unwrap();
            assert!((got - v).abs() <= 1.0 / 128.0, "v={v} got={got}");
        }
    }

    #[test]
    fn quantize_is_stable() {
        // Re-encoding a decoded value must be a fixed point, so repeated
        // compress/decompress cycles do not drift.
        let codec = PddpCodec::from_error_bound(1.0 / 512.0);
        for i in 0..512 {
            let x = codec.dequantize(i);
            assert_eq!(codec.quantize(x), i);
        }
    }

    #[test]
    fn exact_dyadic_values_are_lossless() {
        let codec = PddpCodec::from_error_bound(1.0 / 128.0);
        for &x in &[0.0, 0.5, 0.25, 0.875, 0.3828125] {
            assert_eq!(codec.dequantize(codec.quantize(x)), x);
        }
    }

    #[test]
    #[should_panic(expected = "error bound")]
    fn rejects_bad_bound() {
        let _ = PddpCodec::from_error_bound(1.5);
    }
}
