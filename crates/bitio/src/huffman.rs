//! Canonical Huffman coding over small symbol alphabets.
//!
//! TED's PDDP-*tree* augments the fixed-error distance code with a
//! dictionary tree so frequent relative distances get shorter codes; its
//! exact construction is not public. This module provides the standard
//! equivalent — a canonical Huffman code over the quantized values — used
//! by the `ablation` harness to quantify what a frequency-adaptive
//! distance code would add on top of the fixed-width PDDP quantizer.

use std::collections::HashMap;

use crate::{BitReader, BitWriter, CodecError};

/// A canonical Huffman codebook over `u64` symbols.
#[derive(Debug, Clone)]
pub struct Huffman {
    /// Symbol → (code bits, length).
    encode: HashMap<u64, (u64, u32)>,
    /// Sorted (code, length, symbol) for decoding.
    decode: Vec<(u64, u32, u64)>,
    max_len: u32,
}

impl Huffman {
    /// Builds a codebook from symbol frequencies. Returns `None` for an
    /// empty input.
    pub fn build(freqs: &HashMap<u64, u64>) -> Option<Self> {
        if freqs.is_empty() {
            return None;
        }
        // Standard two-queue Huffman over (weight, node).
        #[derive(Debug)]
        enum Node {
            Leaf(u64),
            Internal(Box<Node>, Box<Node>),
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>> =
            std::collections::BinaryHeap::new();
        let mut pool: Vec<Node> = Vec::new();
        // Deterministic tie-breaking: sort symbols first.
        let mut items: Vec<(&u64, &u64)> = freqs.iter().collect();
        items.sort();
        for (sym, w) in items {
            pool.push(Node::Leaf(*sym));
            heap.push(std::cmp::Reverse((*w, *sym, pool.len() - 1)));
        }
        while heap.len() > 1 {
            let std::cmp::Reverse((w1, _, i1)) = heap.pop().unwrap();
            let std::cmp::Reverse((w2, s2, i2)) = heap.pop().unwrap();
            let left = std::mem::replace(&mut pool[i1], Node::Leaf(0));
            let right = std::mem::replace(&mut pool[i2], Node::Leaf(0));
            pool.push(Node::Internal(Box::new(left), Box::new(right)));
            heap.push(std::cmp::Reverse((w1 + w2, s2, pool.len() - 1)));
        }
        let std::cmp::Reverse((_, _, root)) = heap.pop().unwrap();

        // Collect code lengths.
        let mut lengths: Vec<(u64, u32)> = Vec::new();
        fn walk(node: &Node, depth: u32, out: &mut Vec<(u64, u32)>) {
            match node {
                Node::Leaf(sym) => out.push((*sym, depth.max(1))),
                Node::Internal(l, r) => {
                    walk(l, depth + 1, out);
                    walk(r, depth + 1, out);
                }
            }
        }
        walk(&pool[root], 0, &mut lengths);

        // Canonicalize: sort by (length, symbol), assign increasing codes.
        lengths.sort_by_key(|&(sym, len)| (len, sym));
        let mut encode = HashMap::with_capacity(lengths.len());
        let mut decode = Vec::with_capacity(lengths.len());
        let mut code = 0u64;
        let mut prev_len = lengths[0].1;
        let mut max_len = 0;
        for &(sym, len) in &lengths {
            code <<= len - prev_len;
            prev_len = len;
            encode.insert(sym, (code, len));
            decode.push((code, len, sym));
            max_len = max_len.max(len);
            code += 1;
        }
        Some(Self {
            encode,
            decode,
            max_len,
        })
    }

    /// Encodes one symbol. Errors if the symbol was not in the codebook.
    pub fn encode(&self, w: &mut BitWriter, sym: u64) -> Result<(), CodecError> {
        let &(code, len) = self
            .encode
            .get(&sym)
            .ok_or(CodecError::Malformed("symbol not in Huffman codebook"))?;
        w.write_bits(code, len)
    }

    /// Decodes one symbol.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u64, CodecError> {
        let mut code = 0u64;
        let mut len = 0u32;
        while len < self.max_len {
            code = (code << 1) | u64::from(r.read_bit()?);
            len += 1;
            // Canonical codes are prefix-free: binary search by (code, len).
            if let Ok(i) = self
                .decode
                .binary_search_by(|&(c, l, _)| (l, c).cmp(&(len, code)))
            {
                return Ok(self.decode[i].2);
            }
        }
        Err(CodecError::Malformed("no Huffman code matched"))
    }

    /// Code length in bits for a symbol, if present.
    pub fn code_len(&self, sym: u64) -> Option<u32> {
        self.encode.get(&sym).map(|&(_, len)| len)
    }

    /// Codebook side-information size in bits (symbol + length per entry,
    /// as a canonical table).
    pub fn table_bits(&self, symbol_width: u32) -> u64 {
        self.decode.len() as u64 * (u64::from(symbol_width) + 6)
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.decode.len()
    }

    /// True if the codebook is empty (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.decode.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freqs_of(data: &[u64]) -> HashMap<u64, u64> {
        let mut f = HashMap::new();
        for &d in data {
            *f.entry(d).or_insert(0) += 1;
        }
        f
    }

    #[test]
    fn roundtrip_skewed() {
        let data: Vec<u64> = (0..500)
            .map(|i| match i % 10 {
                0..=6 => 7,
                7 | 8 => 42,
                _ => (i % 90) as u64,
            })
            .collect();
        let h = Huffman::build(&freqs_of(&data)).unwrap();
        let mut w = BitWriter::new();
        for &d in &data {
            h.encode(&mut w, d).unwrap();
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for &d in &data {
            assert_eq!(h.decode(&mut r).unwrap(), d);
        }
        assert_eq!(r.remaining(), 0);
        // Frequent symbols get short codes.
        assert!(h.code_len(7).unwrap() <= h.code_len(42).unwrap());
    }

    #[test]
    fn single_symbol_alphabet() {
        let h = Huffman::build(&freqs_of(&[5, 5, 5])).unwrap();
        let mut w = BitWriter::new();
        h.encode(&mut w, 5).unwrap();
        h.encode(&mut w, 5).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        assert_eq!(h.decode(&mut r).unwrap(), 5);
        assert_eq!(h.decode(&mut r).unwrap(), 5);
    }

    #[test]
    fn unknown_symbol_rejected() {
        let h = Huffman::build(&freqs_of(&[1, 2, 3])).unwrap();
        let mut w = BitWriter::new();
        assert!(h.encode(&mut w, 99).is_err());
    }

    #[test]
    fn empty_freqs() {
        assert!(Huffman::build(&HashMap::new()).is_none());
    }

    #[test]
    fn beats_fixed_width_on_skew() {
        // 90% of mass on one symbol out of 128.
        let mut data = vec![64u64; 900];
        data.extend((0..100).map(|i| i % 128));
        let h = Huffman::build(&freqs_of(&data)).unwrap();
        let total: u64 = data
            .iter()
            .map(|&d| u64::from(h.code_len(d).unwrap()))
            .sum();
        assert!(total + h.table_bits(7) < data.len() as u64 * 7);
    }

    #[test]
    fn uniform_data_costs_about_fixed_width() {
        let data: Vec<u64> = (0..1024).map(|i| i % 128).collect();
        let h = Huffman::build(&freqs_of(&data)).unwrap();
        let total: u64 = data
            .iter()
            .map(|&d| u64::from(h.code_len(d).unwrap()))
            .sum();
        // Within one bit/symbol of the entropy bound (7 bits).
        assert!(total <= data.len() as u64 * 8);
    }
}
