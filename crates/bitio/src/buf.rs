//! MSB-first bit buffers with random access.
//!
//! The compressed formats in this workspace index into their own streams by
//! *bit position* (the paper's `t.pos` / `d.pos` / `ma.pos` tuple fields),
//! so the reader supports seeking to an arbitrary bit.

use crate::CodecError;

/// Append-only bit stream writer. Bits are packed MSB-first into bytes.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Total number of bits written.
    len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Number of bits written so far. This is the bit position the next
    /// write will land at, which callers persist as stream pointers.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len
    }

    /// True if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        let byte = self.len / 8;
        if byte == self.buf.len() {
            self.buf.push(0);
        }
        if bit {
            self.buf[byte] |= 0x80 >> (self.len % 8);
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, most significant bit first.
    ///
    /// Returns an error if `width > 64` or `value` does not fit in `width`
    /// bits — silently truncating would corrupt downstream decompression.
    pub fn write_bits(&mut self, value: u64, width: u32) -> Result<(), CodecError> {
        if width > 64 {
            return Err(CodecError::WidthTooLarge(width));
        }
        if width < 64 && value >> width != 0 {
            return Err(CodecError::ValueOutOfRange { value, width });
        }
        // Byte-chunked fast path.
        let mut remaining = width as usize;
        while remaining > 0 {
            let bit_pos = self.len % 8;
            let byte = self.len / 8;
            if byte == self.buf.len() {
                self.buf.push(0);
            }
            let free = 8 - bit_pos;
            let take = free.min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) as u8) & (((1u16 << take) - 1) as u8);
            self.buf[byte] |= chunk << (free - take);
            self.len += take;
            remaining -= take;
        }
        Ok(())
    }

    /// Appends `count` repetitions of `bit`.
    pub fn push_run(&mut self, bit: bool, mut count: usize) {
        // Align to a byte boundary, then blast whole bytes.
        while !self.len.is_multiple_of(8) && count > 0 {
            self.push_bit(bit);
            count -= 1;
        }
        let fill = if bit { 0xFFu8 } else { 0 };
        let whole = count / 8;
        self.buf.extend(std::iter::repeat_n(fill, whole));
        self.len += whole * 8;
        for _ in 0..count % 8 {
            self.push_bit(bit);
        }
    }

    /// Appends every bit of another buffer.
    pub fn extend_from(&mut self, other: &BitBuf) {
        for i in 0..other.len_bits() {
            self.push_bit(other.get(i));
        }
    }

    /// Finalizes the stream.
    pub fn finish(self) -> BitBuf {
        BitBuf {
            bytes: self.buf.into_boxed_slice(),
            len: self.len,
        }
    }
}

/// An immutable, finalized bit stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitBuf {
    bytes: Box<[u8]>,
    len: usize,
}

impl BitBuf {
    /// An empty buffer.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a buffer from a slice of bools (test / interop convenience).
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut w = BitWriter::with_capacity(bits.len());
        for &b in bits {
            w.push_bit(b);
        }
        w.finish()
    }

    /// The packed backing bytes (MSB-first; the final byte is
    /// zero-padded). Pair with [`BitBuf::from_bytes`] for serialization.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuilds a buffer from packed bytes and an exact bit length.
    ///
    /// Returns `None` when `len` disagrees with the byte count or padding
    /// bits are set (both indicate corruption).
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> Option<Self> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        if !len.is_multiple_of(8) {
            let pad_mask = 0xFFu8 >> (len % 8);
            if let Some(&last) = bytes.last() {
                if last & pad_mask != 0 {
                    return None;
                }
            }
        }
        Some(Self {
            bytes: bytes.into_boxed_slice(),
            len,
        })
    }

    /// Length in bits.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the backing storage in bytes (what you would write to disk).
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Random access to bit `pos`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        (self.bytes[pos / 8] >> (7 - pos % 8)) & 1 == 1
    }

    /// A reader positioned at bit 0.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { buf: self, pos: 0 }
    }

    /// A reader positioned at an arbitrary bit (a persisted stream pointer).
    pub fn reader_at(&self, pos: usize) -> BitReader<'_> {
        BitReader { buf: self, pos }
    }

    /// Materializes the stream as bools (test convenience).
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// Sequential reader over a [`BitBuf`], seekable to any bit position.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a BitBuf,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Current bit position.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Moves the cursor to an absolute bit position.
    #[inline]
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Bits left before the end of the stream.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len.saturating_sub(self.pos)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        if self.pos >= self.buf.len {
            return Err(CodecError::UnexpectedEnd {
                pos: self.pos,
                len: self.buf.len,
            });
        }
        let bit = self.buf.get(self.pos);
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits MSB-first into the low bits of a `u64`.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        if width > 64 {
            return Err(CodecError::WidthTooLarge(width));
        }
        if self.remaining() < width as usize {
            return Err(CodecError::UnexpectedEnd {
                pos: self.pos,
                len: self.buf.len,
            });
        }
        // Byte-chunked fast path.
        let mut v = 0u64;
        let mut remaining = width as usize;
        while remaining > 0 {
            let bit_pos = self.pos % 8;
            let byte = self.buf.bytes[self.pos / 8];
            let avail = 8 - bit_pos;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & (((1u16 << take) - 1) as u8);
            v = (v << take) | u64::from(chunk);
            self.pos += take;
            remaining -= take;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.push_bit(true);
        let buf = w.finish();
        assert_eq!(buf.len_bits(), 3);
        assert!(buf.get(0));
        assert!(!buf.get(1));
        assert!(buf.get(2));
    }

    #[test]
    fn write_bits_msb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4).unwrap();
        let buf = w.finish();
        assert_eq!(buf.to_bits(), vec![true, false, true, true]);
    }

    #[test]
    fn write_bits_rejects_overflow() {
        let mut w = BitWriter::new();
        assert_eq!(
            w.write_bits(8, 3),
            Err(CodecError::ValueOutOfRange { value: 8, width: 3 })
        );
        assert_eq!(w.write_bits(1, 65), Err(CodecError::WidthTooLarge(65)));
    }

    #[test]
    fn write_bits_full_width() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64).unwrap();
        w.write_bits(0, 64).unwrap();
        let buf = w.finish();
        let mut r = buf.reader();
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
    }

    #[test]
    fn reader_roundtrip_values() {
        let values = [(0u64, 1u32), (5, 3), (255, 8), (1023, 10), (1, 1), (77, 9)];
        let mut w = BitWriter::new();
        for &(v, width) in &values {
            w.write_bits(v, width).unwrap();
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for &(v, width) in &values {
            assert_eq!(r.read_bits(width).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_at_mid_stream() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3).unwrap();
        let marker = w.len_bits();
        w.write_bits(0b11001, 5).unwrap();
        let buf = w.finish();
        let mut r = buf.reader_at(marker);
        assert_eq!(r.read_bits(5).unwrap(), 0b11001);
    }

    #[test]
    fn read_past_end_errors() {
        let buf = BitBuf::from_bits(&[true, true]);
        let mut r = buf.reader();
        assert!(r.read_bits(3).is_err());
        r.read_bit().unwrap();
        r.read_bit().unwrap();
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn extend_from_concatenates() {
        let a = BitBuf::from_bits(&[true, false]);
        let b = BitBuf::from_bits(&[false, true, true]);
        let mut w = BitWriter::new();
        w.extend_from(&a);
        w.extend_from(&b);
        let buf = w.finish();
        assert_eq!(buf.to_bits(), vec![true, false, false, true, true]);
    }

    #[test]
    fn push_run_repeats() {
        let mut w = BitWriter::new();
        w.push_run(true, 9);
        w.push_run(false, 2);
        let buf = w.finish();
        assert_eq!(buf.len_bits(), 11);
        assert!(buf.get(8));
        assert!(!buf.get(9));
    }

    #[test]
    fn bytes_len_rounds_up() {
        let buf = BitBuf::from_bits(&[true; 9]);
        assert_eq!(buf.len_bytes(), 2);
    }
}
