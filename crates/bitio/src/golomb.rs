//! Exp-Golomb codes.
//!
//! Two variants live here:
//!
//! * [`encode_unsigned`] / [`decode_unsigned`] — the classic order-0
//!   Exp-Golomb code for non-negative integers, used for the variable-length
//!   headers of the compressed formats (factor counts, day indexes, …).
//! * [`encode_deviation`] / [`decode_deviation`] — the paper's *improved*
//!   Exp-Golomb code (§4.4) for signed sample-interval deviations
//!   `Δt = (t_{i+1} − t_i) − Ts`. Group `j ≥ 0` covers
//!   `|Δ| ∈ [2^j − 1, 2^{j+1} − 2]`; the code is a unary group prefix
//!   (`j` ones, then a zero), followed — for `j ≥ 1` — by one sign bit
//!   (1 = negative) and the `j`-bit offset `|Δ| − (2^j − 1)`. `Δ = 0`
//!   is the single-bit code `0`.
//!
//! The paper's worked example (§4.4) is reproduced in the tests: the SIAR
//! sequence `⟨…, 0, 1, 0, −1, 0, 0⟩` encodes as `0, 1000, 0, 1010, 0, 0`.

use crate::{BitReader, BitWriter, CodecError};

/// Encodes a non-negative integer with order-0 Exp-Golomb.
///
/// `u` is written as `z` zeros followed by the `z+1`-bit binary form of
/// `u + 1`, where `z = ⌊log2(u + 1)⌋`.
pub fn encode_unsigned(w: &mut BitWriter, u: u64) -> Result<(), CodecError> {
    // u + 1 would overflow for u64::MAX; cap to what the code can express.
    if u == u64::MAX {
        return Err(CodecError::ValueOutOfRange {
            value: u,
            width: 64,
        });
    }
    let v = u + 1;
    let z = 63 - v.leading_zeros();
    w.push_run(false, z as usize);
    w.write_bits(v, z + 1)
}

/// Decodes one order-0 Exp-Golomb value.
pub fn decode_unsigned(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let mut z = 0u32;
    while !r.read_bit()? {
        z += 1;
        if z > 63 {
            return Err(CodecError::Malformed("exp-golomb prefix too long"));
        }
    }
    // The leading 1 already consumed is the top bit of v.
    let rest = r.read_bits(z)?;
    let v = (1u64 << z) | rest;
    Ok(v - 1)
}

/// Bit length of [`encode_unsigned`]'s code for `u` without encoding.
pub fn unsigned_len(u: u64) -> usize {
    let z = 63 - (u + 1).leading_zeros();
    (2 * z + 1) as usize
}

/// Encodes a signed sample-interval deviation with the paper's improved
/// Exp-Golomb code.
pub fn encode_deviation(w: &mut BitWriter, delta: i64) -> Result<(), CodecError> {
    if delta == 0 {
        w.push_bit(false);
        return Ok(());
    }
    let mag = delta.unsigned_abs();
    if mag >= (1u64 << 62) {
        return Err(CodecError::ValueOutOfRange {
            value: mag,
            width: 62,
        });
    }
    // Group j such that mag ∈ [2^j − 1, 2^{j+1} − 2]  ⇔  j = ⌊log2(mag + 1)⌋.
    let j = 63 - (mag + 1).leading_zeros();
    debug_assert!(j >= 1);
    w.push_run(true, j as usize);
    w.push_bit(false);
    w.push_bit(delta < 0);
    w.write_bits(mag - ((1u64 << j) - 1), j)
}

/// Decodes one improved Exp-Golomb deviation.
pub fn decode_deviation(r: &mut BitReader<'_>) -> Result<i64, CodecError> {
    let mut j = 0u32;
    while r.read_bit()? {
        j += 1;
        if j > 62 {
            return Err(CodecError::Malformed("deviation group prefix too long"));
        }
    }
    if j == 0 {
        return Ok(0);
    }
    let negative = r.read_bit()?;
    let offset = r.read_bits(j)?;
    let mag = offset + ((1u64 << j) - 1);
    let v = mag as i64;
    Ok(if negative { -v } else { v })
}

/// Bit length of [`encode_deviation`]'s code for `delta` without encoding.
pub fn deviation_len(delta: i64) -> usize {
    if delta == 0 {
        return 1;
    }
    let mag = delta.unsigned_abs();
    let j = (63 - (mag + 1).leading_zeros()) as usize;
    // j-bit prefix + terminating 0 + sign + j-bit offset.
    2 * j + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitBuf;

    fn enc_dev(delta: i64) -> BitBuf {
        let mut w = BitWriter::new();
        encode_deviation(&mut w, delta).unwrap();
        w.finish()
    }

    fn bits_str(buf: &BitBuf) -> String {
        buf.to_bits()
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn paper_example_codes() {
        // §4.4: ⟨…, 0, 1, 0, −1, 0, 0⟩ → ⟨…, 0, 1000, 0, 1010, 0, 0⟩.
        assert_eq!(bits_str(&enc_dev(0)), "0");
        assert_eq!(bits_str(&enc_dev(1)), "1000");
        assert_eq!(bits_str(&enc_dev(-1)), "1010");
    }

    #[test]
    fn deviation_group_boundaries() {
        // Group 1 covers |Δ| ∈ [1, 2], group 2 covers [3, 6], group 3 [7, 14].
        assert_eq!(enc_dev(2).len_bits(), 4);
        assert_eq!(enc_dev(3).len_bits(), 6);
        assert_eq!(enc_dev(6).len_bits(), 6);
        assert_eq!(enc_dev(7).len_bits(), 8);
        assert_eq!(enc_dev(-14).len_bits(), 8);
    }

    #[test]
    fn deviation_roundtrip_small() {
        for delta in -300i64..=300 {
            let buf = enc_dev(delta);
            let mut r = buf.reader();
            assert_eq!(decode_deviation(&mut r).unwrap(), delta, "delta={delta}");
            assert_eq!(r.remaining(), 0);
            assert_eq!(buf.len_bits(), deviation_len(delta));
        }
    }

    #[test]
    fn deviation_roundtrip_large() {
        for delta in [1 << 20, -(1 << 20), (1 << 40) + 12345, -(1 << 55)] {
            let buf = enc_dev(delta);
            let mut r = buf.reader();
            assert_eq!(decode_deviation(&mut r).unwrap(), delta);
        }
    }

    #[test]
    fn deviation_sequence_roundtrip() {
        let seq = [0i64, 1, 0, -1, 0, 0, 5, -17, 240, -239, 3];
        let mut w = BitWriter::new();
        for &d in &seq {
            encode_deviation(&mut w, d).unwrap();
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for &d in &seq {
            assert_eq!(decode_deviation(&mut r).unwrap(), d);
        }
    }

    #[test]
    fn unsigned_roundtrip() {
        for u in 0u64..1000 {
            let mut w = BitWriter::new();
            encode_unsigned(&mut w, u).unwrap();
            let buf = w.finish();
            assert_eq!(buf.len_bits(), unsigned_len(u));
            let mut r = buf.reader();
            assert_eq!(decode_unsigned(&mut r).unwrap(), u);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn unsigned_known_codes() {
        // Classic exp-golomb: 0→"1", 1→"010", 2→"011", 3→"00100".
        let mut w = BitWriter::new();
        encode_unsigned(&mut w, 0).unwrap();
        assert_eq!(bits_str(&w.finish()), "1");
        let mut w = BitWriter::new();
        encode_unsigned(&mut w, 1).unwrap();
        assert_eq!(bits_str(&w.finish()), "010");
        let mut w = BitWriter::new();
        encode_unsigned(&mut w, 3).unwrap();
        assert_eq!(bits_str(&w.finish()), "00100");
    }

    #[test]
    fn unsigned_large_values() {
        for u in [u64::from(u32::MAX), 1u64 << 40, (1u64 << 62) + 7] {
            let mut w = BitWriter::new();
            encode_unsigned(&mut w, u).unwrap();
            let buf = w.finish();
            let mut r = buf.reader();
            assert_eq!(decode_unsigned(&mut r).unwrap(), u);
        }
    }

    #[test]
    fn small_deviations_beat_fixed_width() {
        // The motivation of SIAR + improved Exp-Golomb: when most deviations
        // are 0 or ±1, the encoded length is far below 32 bits/timestamp.
        let seq = [0i64, 0, 1, 0, -1, 0, 0, 0, 1, 0];
        let total: usize = seq.iter().map(|&d| deviation_len(d)).sum();
        assert!(total < seq.len() * 5);
    }
}
