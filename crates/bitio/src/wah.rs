//! Word-Aligned Hybrid (WAH) bitmap compression.
//!
//! This is the bitmap codec the TED paper uses for time-flag bit-strings
//! (reference \[33\] of the UTCQ paper, via van Schaik & de Moor's memory
//! efficient reachability structure). The UTCQ paper *omits* bitmap
//! compression in its comparison because it is slow and orthogonal; we
//! implement it anyway so the ablation harness can quantify that choice.
//!
//! Layout: 32-bit words. A *literal* word has MSB 0 and carries 31 payload
//! bits. A *fill* word has MSB 1, then one fill-bit, then a 30-bit count of
//! consecutive 31-bit groups consisting entirely of that fill bit.

use crate::{BitBuf, BitWriter};

const GROUP: usize = 31;
const FILL_FLAG: u32 = 1 << 31;
const FILL_BIT: u32 = 1 << 30;
const MAX_FILL: u32 = (1 << 30) - 1;

/// A WAH-compressed bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WahBitmap {
    words: Vec<u32>,
    /// Original length in bits (needed because the last group is padded).
    len: usize,
}

impl WahBitmap {
    /// Compresses a bit string.
    pub fn compress(bits: &BitBuf) -> Self {
        let len = bits.len_bits();
        let mut words = Vec::new();
        let mut pending_fill: Option<(bool, u32)> = None;

        let flush_fill = |pending: &mut Option<(bool, u32)>, words: &mut Vec<u32>| {
            if let Some((bit, count)) = pending.take() {
                words.push(FILL_FLAG | if bit { FILL_BIT } else { 0 } | count);
            }
        };

        let mut i = 0;
        while i < len {
            let end = (i + GROUP).min(len);
            let mut group = 0u32;
            let mut ones = 0usize;
            for (k, p) in (i..end).enumerate() {
                if bits.get(p) {
                    group |= 1 << (GROUP - 1 - k);
                    ones += 1;
                }
            }
            let full = end - i == GROUP;
            let is_zero_fill = full && ones == 0;
            let is_one_fill = full && ones == GROUP;
            if is_zero_fill || is_one_fill {
                let bit = is_one_fill;
                match &mut pending_fill {
                    Some((b, count)) if *b == bit && *count < MAX_FILL => *count += 1,
                    _ => {
                        flush_fill(&mut pending_fill, &mut words);
                        pending_fill = Some((bit, 1));
                    }
                }
            } else {
                flush_fill(&mut pending_fill, &mut words);
                words.push(group);
            }
            i = end;
        }
        flush_fill(&mut pending_fill, &mut words);
        Self { words, len }
    }

    /// Decompresses back into a bit string.
    pub fn decompress(&self) -> BitBuf {
        let mut w = BitWriter::with_capacity(self.len);
        for &word in &self.words {
            if word & FILL_FLAG != 0 {
                let bit = word & FILL_BIT != 0;
                let count = (word & MAX_FILL) as usize;
                let n = (count * GROUP).min(self.len - w.len_bits());
                w.push_run(bit, n);
            } else {
                let remaining = self.len - w.len_bits();
                for k in 0..GROUP.min(remaining) {
                    w.push_bit(word & (1 << (GROUP - 1 - k)) != 0);
                }
            }
        }
        w.finish()
    }

    /// Size of the compressed form in bits (32 per word plus the length).
    pub fn size_bits(&self) -> usize {
        self.words.len() * 32
    }

    /// Number of 32-bit words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Original (uncompressed) length in bits.
    pub fn len_bits(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bits: &[bool]) {
        let buf = BitBuf::from_bits(bits);
        let wah = WahBitmap::compress(&buf);
        assert_eq!(wah.decompress(), buf, "len={}", bits.len());
    }

    #[test]
    fn empty_bitmap() {
        roundtrip(&[]);
    }

    #[test]
    fn short_bitmaps() {
        roundtrip(&[true]);
        roundtrip(&[false, true, true]);
        roundtrip(&[true; 30]);
        roundtrip(&[true; 31]);
        roundtrip(&[false; 32]);
    }

    #[test]
    fn long_uniform_runs_compress_well() {
        let bits = vec![false; 31 * 1000];
        let buf = BitBuf::from_bits(&bits);
        let wah = WahBitmap::compress(&buf);
        assert_eq!(wah.word_count(), 1);
        assert_eq!(wah.decompress(), buf);
    }

    #[test]
    fn alternating_runs() {
        let mut bits = Vec::new();
        for block in 0..10 {
            bits.extend(std::iter::repeat_n(block % 2 == 0, 31 * (block + 1)));
        }
        roundtrip(&bits);
    }

    #[test]
    fn mixed_content() {
        let mut bits = Vec::new();
        for i in 0..500usize {
            bits.push(i % 7 == 0 || i % 11 == 3);
        }
        roundtrip(&bits);
        // Mostly-ones bitmap typical of time flags.
        let mut flags = vec![true; 400];
        for i in (0..400).step_by(37) {
            flags[i] = false;
        }
        roundtrip(&flags);
    }

    #[test]
    fn tail_group_shorter_than_31() {
        let mut bits = vec![true; 31 * 3];
        bits.extend([false, true, false]);
        roundtrip(&bits);
    }

    #[test]
    fn fill_runs_merge() {
        // Two adjacent zero-fill groups must merge into one fill word.
        let bits = vec![false; 62];
        let wah = WahBitmap::compress(&BitBuf::from_bits(&bits));
        assert_eq!(wah.word_count(), 1);
    }
}
