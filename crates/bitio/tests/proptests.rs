//! Randomized property tests for every codec in `utcq-bitio`.
//!
//! The build environment is offline, so instead of `proptest` these use a
//! seeded [`StdRng`]: each property runs over a few hundred random cases,
//! deterministic per seed so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq_bitio::golomb;
use utcq_bitio::pddp::PddpCodec;
use utcq_bitio::wah::WahBitmap;
use utcq_bitio::{width_for_max, BitBuf, BitWriter};

fn rand_bools(rng: &mut StdRng, max_len: usize) -> Vec<bool> {
    let n = rng.gen_range(0..=max_len);
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

#[test]
fn bitbuf_roundtrips_arbitrary_bits() {
    let mut rng = StdRng::seed_from_u64(0xB17B0F);
    for _ in 0..256 {
        let bits = rand_bools(&mut rng, 2048);
        let buf = BitBuf::from_bits(&bits);
        assert_eq!(buf.len_bits(), bits.len());
        assert_eq!(buf.to_bits(), bits);
    }
}

#[test]
fn write_read_bits_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x9A17E5);
    for _ in 0..256 {
        let n = rng.gen_range(0..200);
        let mut w = BitWriter::new();
        let mut expected = Vec::with_capacity(n);
        for _ in 0..n {
            let width = rng.gen_range(1u32..=64);
            let v = rng.gen::<u64>();
            let v = if width == 64 {
                v
            } else {
                v & ((1u64 << width) - 1)
            };
            w.write_bits(v, width).unwrap();
            expected.push((v, width));
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for (v, width) in expected {
            assert_eq!(r.read_bits(width).unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }
}

#[test]
fn exp_golomb_unsigned_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x601B);
    for _ in 0..128 {
        let n = rng.gen_range(0..300);
        // Mix small values (short codes) with the full range up to 2^62.
        let values: Vec<u64> = (0..n)
            .map(|_| {
                let width = rng.gen_range(0u32..=62);
                rng.gen::<u64>() >> (64 - width.max(1))
            })
            .collect();
        let mut w = BitWriter::new();
        for &u in &values {
            golomb::encode_unsigned(&mut w, u).unwrap();
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for &u in &values {
            assert_eq!(golomb::decode_unsigned(&mut r).unwrap(), u);
        }
        assert_eq!(r.remaining(), 0);
    }
}

#[test]
fn exp_golomb_deviation_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xDE71A);
    for _ in 0..128 {
        let n = rng.gen_range(0..300);
        let values: Vec<i64> = (0..n)
            .map(|_| rng.gen_range(-(1i64 << 40)..(1i64 << 40)))
            .collect();
        let mut w = BitWriter::new();
        let mut total = 0usize;
        for &d in &values {
            golomb::encode_deviation(&mut w, d).unwrap();
            total += golomb::deviation_len(d);
        }
        let buf = w.finish();
        assert_eq!(buf.len_bits(), total);
        let mut r = buf.reader();
        for &d in &values {
            assert_eq!(golomb::decode_deviation(&mut r).unwrap(), d);
        }
        assert_eq!(r.remaining(), 0);
    }
}

#[test]
fn pddp_error_bounded() {
    let mut rng = StdRng::seed_from_u64(0xADD1);
    for _ in 0..256 {
        let width = rng.gen_range(1u32..=20);
        let codec = PddpCodec::with_width(width);
        let eta = 1.0 / f64::from(1u32 << width.min(31));
        for _ in 0..200 {
            let x = rng.gen_range(0.0f64..1.0);
            let back = codec.dequantize(codec.quantize(x));
            assert!((back - x).abs() <= eta, "x={x} back={back} eta={eta}");
        }
    }
}

#[test]
fn wah_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x3A11);
    for _ in 0..128 {
        let bits = rand_bools(&mut rng, 4096);
        let buf = BitBuf::from_bits(&bits);
        let wah = WahBitmap::compress(&buf);
        assert_eq!(wah.decompress(), buf);
    }
}

#[test]
fn wah_roundtrip_runs() {
    let mut rng = StdRng::seed_from_u64(0x3A12);
    for _ in 0..128 {
        let n_runs = rng.gen_range(0..40);
        let mut bits = Vec::new();
        for _ in 0..n_runs {
            let bit = rng.gen::<bool>();
            let len = rng.gen_range(1usize..200);
            bits.extend(std::iter::repeat_n(bit, len));
        }
        let buf = BitBuf::from_bits(&bits);
        let wah = WahBitmap::compress(&buf);
        assert_eq!(wah.decompress(), buf);
    }
}

#[test]
fn width_for_max_is_sufficient_and_minimal() {
    let mut rng = StdRng::seed_from_u64(0x31D7);
    let check = |max: u64| {
        let w = width_for_max(max);
        assert!(u128::from(max) < (1u128 << w));
        if w > 1 {
            assert!(u128::from(max) >= (1u128 << (w - 1)));
        }
    };
    for boundary in [0, 1, 2, 3, 7, 8, u64::MAX - 1, u64::MAX] {
        check(boundary);
    }
    for _ in 0..4096 {
        // Spread across magnitudes rather than only huge values.
        let shift = rng.gen_range(0u32..64);
        check(rng.gen::<u64>() >> shift);
    }
}

#[test]
fn reader_at_recovers_suffix() {
    let mut rng = StdRng::seed_from_u64(0x5FF1);
    for _ in 0..256 {
        let prefix = rand_bools(&mut rng, 256);
        let suffix = rand_bools(&mut rng, 256);
        let mut w = BitWriter::new();
        for &b in &prefix {
            w.push_bit(b);
        }
        let marker = w.len_bits();
        for &b in &suffix {
            w.push_bit(b);
        }
        let buf = w.finish();
        let mut r = buf.reader_at(marker);
        for &b in &suffix {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }
}
