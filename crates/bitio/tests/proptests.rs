//! Property-based tests for every codec in `utcq-bitio`.

use proptest::prelude::*;
use utcq_bitio::golomb;
use utcq_bitio::pddp::PddpCodec;
use utcq_bitio::wah::WahBitmap;
use utcq_bitio::{width_for_max, BitBuf, BitWriter};

proptest! {
    #[test]
    fn bitbuf_roundtrips_arbitrary_bits(bits in proptest::collection::vec(any::<bool>(), 0..2048)) {
        let buf = BitBuf::from_bits(&bits);
        prop_assert_eq!(buf.len_bits(), bits.len());
        prop_assert_eq!(buf.to_bits(), bits);
    }

    #[test]
    fn write_read_bits_roundtrip(values in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        let mut expected = Vec::with_capacity(values.len());
        for &(v, width) in &values {
            let v = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            w.write_bits(v, width).unwrap();
            expected.push((v, width));
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for (v, width) in expected {
            prop_assert_eq!(r.read_bits(width).unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn exp_golomb_unsigned_roundtrip(values in proptest::collection::vec(0u64..=(1 << 62), 0..300)) {
        let mut w = BitWriter::new();
        for &u in &values {
            golomb::encode_unsigned(&mut w, u).unwrap();
        }
        let buf = w.finish();
        let mut r = buf.reader();
        for &u in &values {
            prop_assert_eq!(golomb::decode_unsigned(&mut r).unwrap(), u);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn exp_golomb_deviation_roundtrip(values in proptest::collection::vec(-(1i64 << 40)..(1i64 << 40), 0..300)) {
        let mut w = BitWriter::new();
        let mut total = 0usize;
        for &d in &values {
            golomb::encode_deviation(&mut w, d).unwrap();
            total += golomb::deviation_len(d);
        }
        let buf = w.finish();
        prop_assert_eq!(buf.len_bits(), total);
        let mut r = buf.reader();
        for &d in &values {
            prop_assert_eq!(golomb::decode_deviation(&mut r).unwrap(), d);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn pddp_error_bounded(width in 1u32..=20, xs in proptest::collection::vec(0.0f64..1.0, 0..200)) {
        let codec = PddpCodec::with_width(width);
        let eta = 1.0 / f64::from(1u32 << width.min(31));
        for &x in &xs {
            let back = codec.dequantize(codec.quantize(x));
            prop_assert!((back - x).abs() <= eta, "x={} back={} eta={}", x, back, eta);
        }
    }

    #[test]
    fn wah_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..4096)) {
        let buf = BitBuf::from_bits(&bits);
        let wah = WahBitmap::compress(&buf);
        prop_assert_eq!(wah.decompress(), buf);
    }

    #[test]
    fn wah_roundtrip_runs(runs in proptest::collection::vec((any::<bool>(), 1usize..200), 0..40)) {
        let mut bits = Vec::new();
        for (bit, n) in runs {
            bits.extend(std::iter::repeat_n(bit, n));
        }
        let buf = BitBuf::from_bits(&bits);
        let wah = WahBitmap::compress(&buf);
        prop_assert_eq!(wah.decompress(), buf);
    }

    #[test]
    fn width_for_max_is_sufficient_and_minimal(max in 0u64..u64::MAX) {
        let w = width_for_max(max);
        prop_assert!(u128::from(max) < (1u128 << w));
        if w > 1 {
            prop_assert!(u128::from(max) >= (1u128 << (w - 1)));
        }
    }

    #[test]
    fn reader_at_recovers_suffix(prefix in proptest::collection::vec(any::<bool>(), 0..256),
                                 suffix in proptest::collection::vec(any::<bool>(), 0..256)) {
        let mut w = BitWriter::new();
        for &b in &prefix { w.push_bit(b); }
        let marker = w.len_bits();
        for &b in &suffix { w.push_bit(b); }
        let buf = w.finish();
        let mut r = buf.reader_at(marker);
        for &b in &suffix {
            prop_assert_eq!(r.read_bit().unwrap(), b);
        }
    }
}
