//! `utcq` — command-line front end for the UTCQ reproduction.
//!
//! `compress` writes a **self-contained v2 container** (road network +
//! compressed dataset + StIU index) — or, with `--shards N`, a
//! **sharded v3 container** whose partitions are routed by `--shard-by
//! time|region`. `info`, `verify` and `query` operate on the file alone
//! — no profile/seed side channel — and open every container version
//! transparently:
//!
//! ```text
//! utcq stats      --profile cd --trajs 200 --seed 1
//! utcq compress   --profile cd --trajs 200 --seed 1 --out data.utcq
//!                 [--shards 4] [--shard-by time|region]
//! utcq info       --in data.utcq
//! utcq verify     --profile cd --trajs 200 --seed 1 --in data.utcq
//! utcq query      --in data.utcq -n 100 [--alpha 0.25] [--limit 64]
//!                 [--cache-bytes N] [--cache-stats]
//! ```
//!
//! Legacy v1 containers (dataset only) still load: `query`/`verify` fall
//! back to regenerating the network from `--profile/--trajs/--seed` and
//! opening through the compatibility path.
//!
//! `query` is written against `utcq::core::QueryTarget`, so the same
//! workload runs unchanged on a single `Store` or a `ShardedStore`.
//! It uses the shared decode cache (default 64 MiB total);
//! `--cache-bytes` overrides the budget (`0` disables caching; a
//! sharded store splits the budget across partitions) and
//! `--cache-stats` prints aggregated hit/miss/eviction counters after
//! the workload.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

use utcq::core::params::CompressParams;
use utcq::core::query::PageRequest;
use utcq::core::shard::{ByRegion, ByTime, ShardPolicy};
use utcq::core::stiu::StiuParams;
use utcq::core::{storage, QueryTarget, RangeQuery, ShardedStore, Store, StoreBuilder};
use utcq::datagen::DatasetProfile;
use utcq::network::RoadNetwork;
use utcq::traj::Dataset;

struct Args {
    flags: HashMap<String, String>,
}

/// Is this token a flag (`-n`, `--out`) rather than a negative numeric
/// value (`-33.9`, `-.5`, `-1`)? Flags never start with a digit or dot.
fn is_flag_token(a: &str) -> bool {
    match a.strip_prefix('-') {
        Some(rest) => !rest.starts_with(|c: char| c.is_ascii_digit() || c == '.'),
        None => false,
    }
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if is_flag_token(a) {
                let key = a.trim_start_matches('-');
                if i + 1 < argv.len() && !is_flag_token(&argv[i + 1]) {
                    flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string(), String::new());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Self { flags }
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn profile_by_name(name: &str) -> Option<DatasetProfile> {
    match name.to_ascii_lowercase().as_str() {
        "dk" => Some(utcq::datagen::profile::dk()),
        "cd" => Some(utcq::datagen::profile::cd()),
        "hz" => Some(utcq::datagen::profile::hz()),
        "tiny" => Some(utcq::datagen::profile::tiny()),
        _ => None,
    }
}

fn build_dataset(args: &Args) -> Result<(DatasetProfile, RoadNetwork, Dataset), String> {
    let pname = args.get("profile", "cd");
    let profile =
        profile_by_name(&pname).ok_or(format!("unknown profile '{pname}' (dk|cd|hz|tiny)"))?;
    let trajs: usize = args.parse_num("trajs", 200);
    let seed: u64 = args.parse_num("seed", 1);
    let (net, ds) = utcq::datagen::generate(&profile, trajs, seed);
    Ok((profile, net, ds))
}

fn params_for(profile: &DatasetProfile) -> CompressParams {
    CompressParams {
        eta_p: if profile.name == "HZ" {
            1.0 / 2048.0
        } else {
            1.0 / 512.0
        },
        n_pivots: if profile.name == "DK" { 2 } else { 1 },
        ..CompressParams::with_interval(profile.default_interval)
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let (_, net, ds) = build_dataset(args)?;
    let s = utcq::traj::stats::summarize(&ds);
    let h = utcq::traj::stats::interval_deviations(&ds);
    println!("dataset {}", ds.name);
    println!("  trajectories:        {}", s.trajectories);
    println!("  avg instances:       {:.2}", s.avg_instances);
    println!("  avg edges/instance:  {:.2}", s.avg_edges);
    println!("  avg samples:         {:.2}", s.avg_samples);
    println!("  raw size:            {} KiB", s.raw_bytes / 1024);
    println!("  intervals within ±1s: {:.1}%", h.within_one() * 100.0);
    println!(
        "network: {} vertices, {} edges, max out-degree {}",
        net.vertex_count(),
        net.edge_count(),
        net.max_out_degree()
    );
    Ok(())
}

/// The routing policy selected by `--shard-by` (default: time).
fn shard_policy(args: &Args) -> Result<Arc<dyn ShardPolicy>, String> {
    match args.get("shard-by", "time").as_str() {
        "time" => Ok(Arc::new(ByTime {
            interval_s: args.parse_num("shard-interval", ByTime::default().interval_s),
        })),
        "region" => Ok(Arc::new(ByRegion {
            grid_n: args.parse_num("shard-grid", ByRegion::default().grid_n),
        })),
        other => Err(format!("unknown shard policy '{other}' (time|region)")),
    }
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let (profile, net, ds) = build_dataset(args)?;
    let out = args.get("out", "data.utcq");
    let params = params_for(&profile);
    let shards: u32 = args.parse_num("shards", 1);
    let t0 = std::time::Instant::now();
    let print_ratio = |n: usize, r: utcq::core::Ratios, dt: std::time::Duration| {
        println!(
            "compressed {n} trajectories in {dt:?}: ratio {:.2} (T {:.2}, E {:.2}, D {:.2}, T' {:.2}, p {:.2})",
            r.total, r.t, r.e, r.d, r.tflag, r.p
        );
    };
    if shards > 1 {
        let policy = shard_policy(args)?;
        let store = StoreBuilder::new(Arc::new(net), params)
            .stiu_params(StiuParams::default())
            .shard_by(policy, shards)
            .map_err(|e| e.to_string())?
            .ingest(&ds)
            .map_err(|e| e.to_string())?
            .finish()
            .map_err(|e| e.to_string())?;
        print_ratio(store.len(), store.ratios(), t0.elapsed());
        let sizes: Vec<String> = store.shards().iter().map(|s| s.len().to_string()).collect();
        println!(
            "shard occupancy ({} shards, {}): [{}]",
            store.shard_count(),
            args.get("shard-by", "time"),
            sizes.join(", ")
        );
        store.save(&out).map_err(|e| e.to_string())?;
        println!("wrote {out} (sharded v3 container)");
    } else {
        let store = Store::build(Arc::new(net), &ds, params, StiuParams::default())
            .map_err(|e| e.to_string())?;
        print_ratio(store.len(), store.ratios(), t0.elapsed());
        store.save(&out).map_err(|e| e.to_string())?;
        println!("wrote {out} (self-contained v2 container)");
    }
    Ok(())
}

/// A container opened as a queryable target — single-store or sharded.
/// Boxed: a `Store` is a few hundred bytes of inline headers, and the
/// enum would otherwise carry the larger variant's size everywhere.
enum Opened {
    Single(Box<Store>),
    Sharded(Box<ShardedStore>),
}

impl Opened {
    /// The polymorphic query surface.
    fn target(&self) -> &dyn QueryTarget {
        match self {
            Opened::Single(s) => s.as_ref(),
            Opened::Sharded(s) => s.as_ref(),
        }
    }

    /// Every underlying partition (one for a single store).
    fn stores(&self) -> Vec<&Store> {
        match self {
            Opened::Single(s) => vec![s],
            Opened::Sharded(s) => s.shards().iter().collect(),
        }
    }
}

/// Opens a container as a queryable store: v2 directly, v3 through the
/// sharded facade, v1 through the compatibility path using the
/// regenerated network. Only the network is regenerated — not the
/// trajectories, which live in the container.
fn open_store(args: &Args) -> Result<Opened, String> {
    let path = args.get("in", "data.utcq");
    match Store::open(&path) {
        Ok(store) => Ok(Opened::Single(Box::new(store))),
        Err(utcq::core::Error::ShardedContainer) => ShardedStore::open(&path)
            .map(|s| Opened::Sharded(Box::new(s)))
            .map_err(|e| format!("{path}: {e}")),
        Err(utcq::core::Error::NeedsNetwork) => {
            let pname = args.get("profile", "cd");
            let profile = profile_by_name(&pname)
                .ok_or(format!("unknown profile '{pname}' (dk|cd|hz|tiny)"))?;
            let net = utcq::datagen::generate_network(&profile, args.parse_num("seed", 1));
            Store::open_v1(&path, Arc::new(net), StiuParams::default())
                .map(|s| Opened::Single(Box::new(s)))
                .map_err(|e| format!("{path}: {e}"))
        }
        Err(e) => Err(format!("{path}: {e}")),
    }
}

fn print_dataset_info(cds: &utcq::core::CompressedDataset) {
    let r = cds.ratios();
    println!("container: dataset '{}'", cds.name);
    println!("  trajectories:     {}", cds.trajectories.len());
    println!(
        "  instances:        {}",
        cds.trajectories
            .iter()
            .map(|t| t.instance_count())
            .sum::<usize>()
    );
    println!(
        "  ηD = {}, ηp = {}, pivots = {}",
        cds.params.eta_d, cds.params.eta_p, cds.params.n_pivots
    );
    println!("  raw:              {} KiB", cds.raw.total() / 8 / 1024);
    println!(
        "  compressed:       {} KiB",
        cds.compressed.total() / 8 / 1024
    );
    println!("  ratio:            {:.2}", r.total);
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.get("in", "data.utcq");
    let f = File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    match storage::load(&mut BufReader::new(f)) {
        Ok(cds) => print_dataset_info(&cds),
        Err(storage::StorageError::Sharded) => {
            let store = ShardedStore::open(&path).map_err(|e| format!("{path}: {e}"))?;
            let r = store.ratios();
            println!(
                "container: sharded ({} shards, policy {:?})",
                store.shard_count(),
                store.policy_spec()
            );
            println!("  trajectories:     {}", store.len());
            println!("  ratio:            {:.2}", r.total);
            for (i, s) in store.shards().iter().enumerate() {
                println!(
                    "  shard {i}: {} trajectories, ratio {:.2}",
                    s.len(),
                    s.ratios().total
                );
            }
        }
        Err(e) => return Err(e.to_string()),
    }
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let (_, net, ds) = build_dataset(args)?;
    let path = args.get("in", "data.utcq");
    let f = File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let cds = storage::load(&mut BufReader::new(f)).map_err(|e| e.to_string())?;
    if cds.trajectories.len() != ds.trajectories.len() {
        return Err("container does not match the regenerated dataset".into());
    }
    let back = utcq::core::decompress_dataset(&net, &cds).map_err(|e| e.to_string())?;
    for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
        utcq::core::decompress::check_lossy_roundtrip(a, b, cds.params.eta_d, cds.params.eta_p)?;
    }
    println!(
        "verified: {} trajectories decompress within ηD = {}, ηp = {}",
        ds.trajectories.len(),
        cds.params.eta_d,
        cds.params.eta_p
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let opened = open_store(args)?;
    let store = opened.target();
    let n: usize = args.parse_num("n", 100);
    let alpha: f64 = args.parse_num("alpha", 0.25);
    let limit: usize = args.parse_num("limit", 1024);
    if let Some(v) = args.flags.get("cache-bytes") {
        let bytes: usize = v
            .parse()
            .map_err(|_| format!("--cache-bytes: not a byte count: '{v}'"))?;
        store.set_cache_bytes(bytes);
    }
    // Derive a query workload from the store itself: decompress the
    // instances once to pick probe edges (zero side-channel arguments).
    // A sharded store contributes every partition's trajectories;
    // probing in id order keeps `-n N` selecting the same workload
    // whether the dataset sits in a v2 or a v3 container.
    let mut probes = Vec::new();
    for part in opened.stores() {
        let back = utcq::core::decompress_dataset(part.network(), part.compressed())
            .map_err(|e| e.to_string())?;
        probes.extend(back.trajectories);
    }
    probes.sort_by_key(|tu| tu.id);
    let mut answered = 0usize;
    let mut range_hits = 0usize;
    let t0 = std::time::Instant::now();
    let mut ranges = Vec::new();
    for (k, tu) in probes.iter().enumerate().take(n) {
        let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
        answered += store
            .where_query(tu.id, mid, alpha, PageRequest::first(limit))
            .map_err(|e| e.to_string())?
            .items
            .len();
        let edge = tu.top_instance().path[k % tu.top_instance().path.len()];
        answered += store
            .when_query(tu.id, edge, 0.5, alpha, PageRequest::first(limit))
            .map_err(|e| e.to_string())?
            .items
            .len();
        if k % 10 == 0 {
            let b = store.network().bounding_rect();
            let re = utcq::network::Rect::new(
                b.min_x + (k % 4) as f64 * b.width() / 4.0,
                b.min_y,
                b.min_x + ((k % 4) + 1) as f64 * b.width() / 4.0,
                b.max_y,
            );
            ranges.push(RangeQuery { re, tq: mid, alpha });
        }
    }
    // The batched parallel path for the range workload.
    for ids in store.par_range_query(&ranges).map_err(|e| e.to_string())? {
        range_hits += ids.len();
    }
    println!(
        "ran {} where+when queries ({} answers, page limit {limit}) and {} parallel range queries ({} hits) in {:?}",
        n.min(store.len()) * 2,
        answered,
        ranges.len(),
        range_hits,
        t0.elapsed()
    );
    if args.flags.contains_key("cache-stats") {
        let s = store.cache_stats();
        println!(
            "decode cache: {} hits / {} misses ({:.1}% hit rate), {} entries, {} / {} bytes, {} evictions",
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.entries,
            s.bytes,
            s.budget_bytes,
            s.evictions
        );
    }
    Ok(())
}

fn usage() -> String {
    "usage: utcq <stats|compress|info|verify|query> [--profile dk|cd|hz|tiny] \
     [--trajs N] [--seed S] [--in FILE] [--out FILE] [-n N] [--alpha A] [--limit L] \
     [--shards N] [--shard-by time|region] [--shard-interval S] [--shard-grid N] \
     [--cache-bytes N] [--cache-stats]"
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args),
        "compress" => cmd_compress(&args),
        "info" => cmd_info(&args),
        "verify" => cmd_verify(&args),
        "query" => cmd_query(&args),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // The old parser treated any `-…` token as a flag, so a negative
        // value was swallowed and its flag left empty.
        let args = Args::parse(&argv(&["--min-lat", "-33.9", "-n", "-1", "--eps", "-.5"]));
        assert_eq!(args.get("min-lat", ""), "-33.9");
        assert_eq!(args.parse_num::<i64>("n", 0), -1);
        assert_eq!(args.parse_num::<f64>("eps", 0.0), -0.5);
    }

    #[test]
    fn flags_without_values_still_parse() {
        let args = Args::parse(&argv(&["--verbose", "--out", "x.utcq", "-q"]));
        assert_eq!(args.get("verbose", "missing"), "");
        assert_eq!(args.get("out", ""), "x.utcq");
        assert_eq!(args.get("q", "missing"), "");
    }

    #[test]
    fn flag_heuristic() {
        assert!(is_flag_token("--out"));
        assert!(is_flag_token("-n"));
        assert!(!is_flag_token("-33.9"));
        assert!(!is_flag_token("-.5"));
        assert!(!is_flag_token("-1"));
        assert!(!is_flag_token("value"));
        assert!(!is_flag_token("33"));
    }
}
