//! `utcq` — command-line front end for the UTCQ reproduction.
//!
//! Datasets are deterministic functions of `(profile, trajs, seed)`, so
//! the road network never needs to be shipped alongside a compressed
//! container: every subcommand regenerates it from the same arguments.
//!
//! ```text
//! utcq stats      --profile cd --trajs 200 --seed 1
//! utcq compress   --profile cd --trajs 200 --seed 1 --out data.utcq
//! utcq info       --in data.utcq
//! utcq verify     --profile cd --trajs 200 --seed 1 --in data.utcq
//! utcq query      --profile cd --trajs 200 --seed 1 --in data.utcq -n 100
//! ```

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use utcq::core::params::CompressParams;
use utcq::core::query::CompressedStore;
use utcq::core::stiu::StiuParams;
use utcq::core::{storage, CompressedDataset};
use utcq::datagen::DatasetProfile;
use utcq::network::RoadNetwork;
use utcq::traj::Dataset;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if i + 1 < argv.len() && !argv[i + 1].starts_with('-') {
                    flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string(), String::new());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Self { flags }
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn profile_by_name(name: &str) -> Option<DatasetProfile> {
    match name.to_ascii_lowercase().as_str() {
        "dk" => Some(utcq::datagen::profile::dk()),
        "cd" => Some(utcq::datagen::profile::cd()),
        "hz" => Some(utcq::datagen::profile::hz()),
        "tiny" => Some(utcq::datagen::profile::tiny()),
        _ => None,
    }
}

fn build_dataset(args: &Args) -> Result<(DatasetProfile, RoadNetwork, Dataset), String> {
    let pname = args.get("profile", "cd");
    let profile =
        profile_by_name(&pname).ok_or(format!("unknown profile '{pname}' (dk|cd|hz|tiny)"))?;
    let trajs: usize = args.parse_num("trajs", 200);
    let seed: u64 = args.parse_num("seed", 1);
    let (net, ds) = utcq::datagen::generate(&profile, trajs, seed);
    Ok((profile, net, ds))
}

fn params_for(profile: &DatasetProfile) -> CompressParams {
    CompressParams {
        eta_p: if profile.name == "HZ" { 1.0 / 2048.0 } else { 1.0 / 512.0 },
        n_pivots: if profile.name == "DK" { 2 } else { 1 },
        ..CompressParams::with_interval(profile.default_interval)
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let (_, net, ds) = build_dataset(args)?;
    let s = utcq::traj::stats::summarize(&ds);
    let h = utcq::traj::stats::interval_deviations(&ds);
    println!("dataset {}", ds.name);
    println!("  trajectories:        {}", s.trajectories);
    println!("  avg instances:       {:.2}", s.avg_instances);
    println!("  avg edges/instance:  {:.2}", s.avg_edges);
    println!("  avg samples:         {:.2}", s.avg_samples);
    println!("  raw size:            {} KiB", s.raw_bytes / 1024);
    println!("  intervals within ±1s: {:.1}%", h.within_one() * 100.0);
    println!(
        "network: {} vertices, {} edges, max out-degree {}",
        net.vertex_count(),
        net.edge_count(),
        net.max_out_degree()
    );
    Ok(())
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let (profile, net, ds) = build_dataset(args)?;
    let out = args.get("out", "data.utcq");
    let params = params_for(&profile);
    let t0 = std::time::Instant::now();
    let cds = utcq::core::compress_dataset(&net, &ds, &params).map_err(|e| e.to_string())?;
    let dt = t0.elapsed();
    let r = cds.ratios();
    println!(
        "compressed {} trajectories in {dt:?}: ratio {:.2} (T {:.2}, E {:.2}, D {:.2}, T' {:.2}, p {:.2})",
        ds.trajectories.len(),
        r.total,
        r.t,
        r.e,
        r.d,
        r.tflag,
        r.p
    );
    let f = File::create(&out).map_err(|e| e.to_string())?;
    let mut w = BufWriter::new(f);
    storage::save(&cds, &mut w).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn load_container(args: &Args) -> Result<CompressedDataset, String> {
    let path = args.get("in", "data.utcq");
    let f = File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    storage::load(&mut BufReader::new(f)).map_err(|e| e.to_string())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let cds = load_container(args)?;
    let r = cds.ratios();
    println!("container: dataset '{}'", cds.name);
    println!("  trajectories:     {}", cds.trajectories.len());
    println!(
        "  instances:        {}",
        cds.trajectories.iter().map(|t| t.instance_count()).sum::<usize>()
    );
    println!("  ηD = {}, ηp = {}, pivots = {}", cds.params.eta_d, cds.params.eta_p, cds.params.n_pivots);
    println!("  raw:              {} KiB", cds.raw.total() / 8 / 1024);
    println!("  compressed:       {} KiB", cds.compressed.total() / 8 / 1024);
    println!("  ratio:            {:.2}", r.total);
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let (_, net, ds) = build_dataset(args)?;
    let cds = load_container(args)?;
    if cds.trajectories.len() != ds.trajectories.len() {
        return Err("container does not match the regenerated dataset".into());
    }
    let back = utcq::core::decompress_dataset(&net, &cds).map_err(|e| e.to_string())?;
    for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
        utcq::core::decompress::check_lossy_roundtrip(a, b, cds.params.eta_d, cds.params.eta_p)?;
    }
    println!(
        "verified: {} trajectories decompress within ηD = {}, ηp = {}",
        ds.trajectories.len(),
        cds.params.eta_d,
        cds.params.eta_p
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let (_, net, ds) = build_dataset(args)?;
    let cds = load_container(args)?;
    let n: usize = args.parse_num("n", 100);
    // Index construction uses the regenerated originals, exactly as it
    // does during compression.
    let store = CompressedStore::build(&net, &ds, cds.params, StiuParams::default())
        .map_err(|e| e.to_string())?;
    let mut answered = 0usize;
    let t0 = std::time::Instant::now();
    for (k, tu) in ds.trajectories.iter().enumerate().take(n) {
        let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
        answered += store
            .where_query(tu.id, mid, 0.25)
            .map_err(|e| e.to_string())?
            .len();
        let edge = tu.top_instance().path[k % tu.top_instance().path.len()];
        answered += store
            .when_query(tu.id, edge, 0.5, 0.25)
            .map_err(|e| e.to_string())?
            .len();
    }
    println!(
        "ran {} where + when queries ({} answers) in {:?}",
        n.min(ds.trajectories.len()) * 2,
        answered,
        t0.elapsed()
    );
    Ok(())
}

fn usage() -> String {
    "usage: utcq <stats|compress|info|verify|query> [--profile dk|cd|hz|tiny] \
     [--trajs N] [--seed S] [--in FILE] [--out FILE] [-n N]"
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args),
        "compress" => cmd_compress(&args),
        "info" => cmd_info(&args),
        "verify" => cmd_verify(&args),
        "query" => cmd_query(&args),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
