//! `utcq` — command-line front end for the UTCQ reproduction.
//!
//! `compress` writes a **self-contained v2 container** (road network +
//! compressed dataset + StIU index) — or, with `--shards N`, a
//! **sharded v3 container** whose partitions are routed by `--shard-by
//! time|region`. `info`, `verify` and `query` operate on the file alone
//! — no profile/seed side channel — and open every container version
//! transparently:
//!
//! ```text
//! utcq stats      --profile cd --trajs 200 --seed 1
//! utcq compress   --profile cd --trajs 200 --seed 1 --out data.utcq
//!                 [--shards 4] [--shard-by time|region]
//! utcq info       --in data.utcq
//! utcq verify     --profile cd --trajs 200 --seed 1 --in data.utcq
//! utcq query      --in data.utcq -n 100 [--alpha 0.25] [--limit 64]
//!                 [--cache-bytes N] [--cache-stats]
//! utcq serve      --in data.utcq [--addr 127.0.0.1:7071] [--threads 4]
//!                 [--cache-bytes N] [--writable]
//!                 [--wal log.wal] [--fsync always|never|every:N]
//!                 [--checkpoint-bytes N] [--follow HOST:PORT]
//! utcq client     --addr HOST:PORT [--pipeline N] | --in data.utcq [--writable]
//! ```
//!
//! Legacy v1 containers (dataset only) still load: `query`/`verify` fall
//! back to regenerating the network from `--profile/--trajs/--seed` and
//! opening through the compatibility path.
//!
//! `query` is written against `utcq::core::QueryTarget`, so the same
//! workload runs unchanged on a single `Store` or a `ShardedStore`.
//! It uses the shared decode cache (default 64 MiB total);
//! `--cache-bytes` overrides the budget (`0` disables caching; a
//! sharded store splits the budget across partitions) and
//! `--cache-stats` prints aggregated hit/miss/eviction counters after
//! the workload.
//!
//! `serve` keeps the container open in a long-lived process and answers
//! the newline-delimited JSON protocol of `PROTOCOL.md` over TCP, so
//! the decode cache stays warm across requests instead of being rebuilt
//! per invocation. With `--writable` the server also honors the
//! protocol's `ingest` op: batches append to the live store and publish
//! as new snapshots while queries keep running. `--wal` makes accepted
//! batches durable (append + fsync before publish, replay on restart),
//! `--checkpoint-bytes` bounds the log with crash-safe checkpoints, and
//! `--follow` runs a read-only replica streaming the leader's batches —
//! see `docs/DURABILITY.md`. `client` speaks the protocol from stdin —
//! against a running server (`--addr`, reconnecting with bounded
//! backoff if the connection drops; add `--pipeline N` to keep up to N
//! requests outstanding, responses stream back in request order), or
//! offline against the container itself (`--in`, add `--writable` to
//! replay ingest sessions), producing byte-identical responses; the
//! serve-smoke CI jobs diff the two.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;

use utcq::core::opened::InfoReport;
use utcq::core::params::CompressParams;
use utcq::core::query::PageRequest;
use utcq::core::serve::{Server, DEFAULT_THREADS};
use utcq::core::shard::{ByRegion, ByTime, ShardPolicy};
use utcq::core::stiu::StiuParams;
use utcq::core::{
    storage, wire, FsyncPolicy, Opened, QueryTarget, RangeQuery, Store, StoreBuilder, WalConfig,
};
use utcq::datagen::DatasetProfile;
use utcq::network::RoadNetwork;
use utcq::traj::Dataset;

struct Args {
    flags: HashMap<String, String>,
}

/// Is this token a flag (`-n`, `--out`) rather than a negative numeric
/// value (`-33.9`, `-.5`, `-1`)? Flags never start with a digit or dot.
fn is_flag_token(a: &str) -> bool {
    match a.strip_prefix('-') {
        Some(rest) => !rest.starts_with(|c: char| c.is_ascii_digit() || c == '.'),
        None => false,
    }
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if is_flag_token(a) {
                let key = a.trim_start_matches('-');
                if i + 1 < argv.len() && !is_flag_token(&argv[i + 1]) {
                    flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string(), String::new());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Self { flags }
    }

    fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn profile_by_name(name: &str) -> Option<DatasetProfile> {
    match name.to_ascii_lowercase().as_str() {
        "dk" => Some(utcq::datagen::profile::dk()),
        "cd" => Some(utcq::datagen::profile::cd()),
        "hz" => Some(utcq::datagen::profile::hz()),
        "tiny" => Some(utcq::datagen::profile::tiny()),
        _ => None,
    }
}

fn build_dataset(args: &Args) -> Result<(DatasetProfile, RoadNetwork, Dataset), String> {
    let pname = args.get("profile", "cd");
    let profile =
        profile_by_name(&pname).ok_or(format!("unknown profile '{pname}' (dk|cd|hz|tiny)"))?;
    let trajs: usize = args.parse_num("trajs", 200);
    let seed: u64 = args.parse_num("seed", 1);
    let (net, ds) = utcq::datagen::generate(&profile, trajs, seed);
    Ok((profile, net, ds))
}

fn params_for(profile: &DatasetProfile) -> CompressParams {
    CompressParams {
        eta_p: if profile.name == "HZ" {
            1.0 / 2048.0
        } else {
            1.0 / 512.0
        },
        n_pivots: if profile.name == "DK" { 2 } else { 1 },
        ..CompressParams::with_interval(profile.default_interval)
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let (_, net, ds) = build_dataset(args)?;
    let s = utcq::traj::stats::summarize(&ds);
    let h = utcq::traj::stats::interval_deviations(&ds);
    println!("dataset {}", ds.name);
    println!("  trajectories:        {}", s.trajectories);
    println!("  avg instances:       {:.2}", s.avg_instances);
    println!("  avg edges/instance:  {:.2}", s.avg_edges);
    println!("  avg samples:         {:.2}", s.avg_samples);
    println!("  raw size:            {} KiB", s.raw_bytes / 1024);
    println!("  intervals within ±1s: {:.1}%", h.within_one() * 100.0);
    println!(
        "network: {} vertices, {} edges, max out-degree {}",
        net.vertex_count(),
        net.edge_count(),
        net.max_out_degree()
    );
    Ok(())
}

/// The routing policy selected by `--shard-by` (default: time).
fn shard_policy(args: &Args) -> Result<Arc<dyn ShardPolicy>, String> {
    match args.get("shard-by", "time").as_str() {
        "time" => Ok(Arc::new(ByTime {
            interval_s: args.parse_num("shard-interval", ByTime::default().interval_s),
        })),
        "region" => Ok(Arc::new(ByRegion {
            grid_n: args.parse_num("shard-grid", ByRegion::default().grid_n),
        })),
        other => Err(format!("unknown shard policy '{other}' (time|region)")),
    }
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let (profile, net, ds) = build_dataset(args)?;
    let out = args.get("out", "data.utcq");
    let params = params_for(&profile);
    let shards: u32 = args.parse_num("shards", 1);
    let t0 = std::time::Instant::now();
    let print_ratio = |n: usize, r: utcq::core::Ratios, dt: std::time::Duration| {
        println!(
            "compressed {n} trajectories in {dt:?}: ratio {:.2} (T {:.2}, E {:.2}, D {:.2}, T' {:.2}, p {:.2})",
            r.total, r.t, r.e, r.d, r.tflag, r.p
        );
    };
    if shards > 1 {
        let policy = shard_policy(args)?;
        let store = StoreBuilder::new(Arc::new(net), params)
            .stiu_params(StiuParams::default())
            .shard_by(policy, shards)
            .map_err(|e| e.to_string())?
            .ingest(&ds)
            .map_err(|e| e.to_string())?
            .finish()
            .map_err(|e| e.to_string())?;
        print_ratio(store.len(), store.ratios(), t0.elapsed());
        let sizes: Vec<String> = store.shards().iter().map(|s| s.len().to_string()).collect();
        println!(
            "shard occupancy ({} shards, {}): [{}]",
            store.shard_count(),
            args.get("shard-by", "time"),
            sizes.join(", ")
        );
        store.save(&out).map_err(|e| e.to_string())?;
        println!("wrote {out} (sharded v3 container)");
    } else {
        let store = Store::build(Arc::new(net), &ds, params, StiuParams::default())
            .map_err(|e| e.to_string())?;
        print_ratio(store.len(), store.ratios(), t0.elapsed());
        store.save(&out).map_err(|e| e.to_string())?;
        println!("wrote {out} (self-contained v2 container)");
    }
    Ok(())
}

/// Opens a container as a queryable store through the
/// [`utcq::core::Opened`] facade: v2 directly, v3 through the sharded
/// facade, v1 through the compatibility path using the regenerated
/// network. Only the network is regenerated — not the trajectories,
/// which live in the container.
fn open_store(args: &Args) -> Result<Opened, String> {
    let path = args.get("in", "data.utcq");
    match Opened::open(&path) {
        Ok(opened) => Ok(opened),
        Err(utcq::core::Error::NeedsNetwork) => {
            let pname = args.get("profile", "cd");
            let profile = profile_by_name(&pname)
                .ok_or(format!("unknown profile '{pname}' (dk|cd|hz|tiny)"))?;
            let net = utcq::datagen::generate_network(&profile, args.parse_num("seed", 1));
            Opened::open_v1(&path, Arc::new(net), StiuParams::default())
                .map_err(|e| format!("{path}: {e}"))
        }
        Err(e) => Err(format!("{path}: {e}")),
    }
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.get("in", "data.utcq");
    // Through the facade for self-contained containers; dataset-only
    // fallback for legacy v1 files, which `info` can describe without a
    // network (no profile/seed flags needed).
    let report = match Opened::open(&path) {
        Ok(opened) => opened.info(),
        Err(utcq::core::Error::NeedsNetwork) => {
            let f = File::open(&path).map_err(|e| format!("{path}: {e}"))?;
            let cds = storage::load(&mut BufReader::new(f)).map_err(|e| e.to_string())?;
            InfoReport::from_dataset(&cds)
        }
        Err(e) => return Err(format!("{path}: {e}")),
    };
    print!("{}", report.render());
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let (_, net, ds) = build_dataset(args)?;
    let path = args.get("in", "data.utcq");
    let f = File::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let cds = storage::load(&mut BufReader::new(f)).map_err(|e| e.to_string())?;
    if cds.trajectories.len() != ds.trajectories.len() {
        return Err("container does not match the regenerated dataset".into());
    }
    let back = utcq::core::decompress_dataset(&net, &cds).map_err(|e| e.to_string())?;
    for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
        utcq::core::decompress::check_lossy_roundtrip(a, b, cds.params.eta_d, cds.params.eta_p)?;
    }
    println!(
        "verified: {} trajectories decompress within ηD = {}, ηp = {}",
        ds.trajectories.len(),
        cds.params.eta_d,
        cds.params.eta_p
    );
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let opened = open_store(args)?;
    let store = opened.target();
    let n: usize = args.parse_num("n", 100);
    let alpha: f64 = args.parse_num("alpha", 0.25);
    let limit: usize = args.parse_num("limit", 1024);
    if let Some(v) = args.flags.get("cache-bytes") {
        let bytes: usize = v
            .parse()
            .map_err(|_| format!("--cache-bytes: not a byte count: '{v}'"))?;
        store.set_cache_bytes(bytes);
    }
    // Derive a query workload from the store itself: decompress the
    // instances once to pick probe edges (zero side-channel arguments).
    // A sharded store contributes every partition's trajectories;
    // probing in id order keeps `-n N` selecting the same workload
    // whether the dataset sits in a v2 or a v3 container.
    let mut probes = Vec::new();
    for snap in opened.snapshots() {
        let back = utcq::core::decompress_dataset(snap.network(), snap.compressed())
            .map_err(|e| e.to_string())?;
        probes.extend(back.trajectories);
    }
    probes.sort_by_key(|tu| tu.id);
    let mut answered = 0usize;
    let mut range_hits = 0usize;
    let t0 = std::time::Instant::now();
    let mut ranges = Vec::new();
    for (k, tu) in probes.iter().enumerate().take(n) {
        let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
        answered += store
            .where_query(tu.id, mid, alpha, PageRequest::first(limit))
            .map_err(|e| e.to_string())?
            .items
            .len();
        let edge = tu.top_instance().path[k % tu.top_instance().path.len()];
        answered += store
            .when_query(tu.id, edge, 0.5, alpha, PageRequest::first(limit))
            .map_err(|e| e.to_string())?
            .items
            .len();
        if k % 10 == 0 {
            let b = store.network().bounding_rect();
            let re = utcq::network::Rect::new(
                b.min_x + (k % 4) as f64 * b.width() / 4.0,
                b.min_y,
                b.min_x + ((k % 4) + 1) as f64 * b.width() / 4.0,
                b.max_y,
            );
            ranges.push(RangeQuery { re, tq: mid, alpha });
        }
    }
    // The batched parallel path for the range workload.
    for ids in store.par_range_query(&ranges).map_err(|e| e.to_string())? {
        range_hits += ids.len();
    }
    println!(
        "ran {} where+when queries ({} answers, page limit {limit}) and {} parallel range queries ({} hits) in {:?}",
        n.min(store.len()) * 2,
        answered,
        ranges.len(),
        range_hits,
        t0.elapsed()
    );
    if args.flags.contains_key("cache-stats") {
        // The shared formatter — the serve process prints the same line
        // at shutdown, so the two surfaces cannot drift.
        println!("{}", store.cache_stats().render());
    }
    Ok(())
}

/// Decodes `--fsync always|never|every:N`.
fn parse_fsync(s: &str) -> Result<FsyncPolicy, String> {
    match s {
        "always" => Ok(FsyncPolicy::Always),
        "never" => Ok(FsyncPolicy::Never),
        other => match other.strip_prefix("every:") {
            Some(n) => n
                .parse::<u32>()
                .ok()
                .filter(|&n| n > 0)
                .map(FsyncPolicy::EveryN)
                .ok_or_else(|| format!("--fsync: not a batch count: '{n}'")),
            None => Err(format!("--fsync: expected always|never|every:N, got '{s}'")),
        },
    }
}

/// `utcq serve`: keep the container open and answer the `PROTOCOL.md`
/// wire protocol over TCP until a `shutdown` request arrives.
///
/// Durability and replication flags (see `docs/DURABILITY.md`):
///
/// * `--wal PATH` attaches a write-ahead log — accepted batches are
///   appended and fsynced (`--fsync always|never|every:N`) before they
///   publish, and replayed on the next open;
/// * `--checkpoint-bytes N` re-saves the container crash-safely and
///   truncates the log whenever it grows past N bytes;
/// * `--follow ADDR` runs a read-only follower that streams accepted
///   batches from the leader at ADDR (mutually exclusive with
///   `--writable`).
fn cmd_serve(args: &Args) -> Result<(), String> {
    let opened = Arc::new(open_store(args)?);
    if let Some(v) = args.flags.get("cache-bytes") {
        let bytes: usize = v
            .parse()
            .map_err(|_| format!("--cache-bytes: not a byte count: '{v}'"))?;
        opened.set_cache_bytes(bytes);
    }
    let writable = args.flags.contains_key("writable");
    let follow_addr = args.flags.get("follow").cloned();
    if follow_addr.is_some() && writable {
        return Err("--follow runs a read-only replica; drop --writable".to_string());
    }
    if let Some(wal_path) = args.flags.get("wal") {
        let fsync = parse_fsync(&args.get("fsync", "always"))?;
        let cfg = WalConfig::new(wal_path)
            .fsync(fsync)
            .checkpoint_to(args.get("in", "data.utcq"));
        let replayed = opened
            .attach_wal(cfg)
            .map_err(|e| format!("--wal {wal_path}: {e}"))?;
        if replayed > 0 {
            eprintln!("replayed {replayed} batch(es) from {wal_path}");
        }
    }
    let threads: usize = args.parse_num("threads", DEFAULT_THREADS);
    let addr = args.get("addr", "127.0.0.1:7071");
    let server = Server::bind(Arc::clone(&opened), &addr, threads)
        .map_err(|e| e.to_string())?
        .writable(writable);
    // The bound address goes to stdout (and is flushed) first: scripts
    // bind port 0 and read the real port back from this line.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    eprintln!(
        "serving {} ({}, {} trajectories, {}) with {threads} worker threads",
        args.get("in", "data.utcq"),
        opened.shape(),
        opened.len(),
        if writable { "writable" } else { "read-only" },
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut background = Vec::new();

    // Size-triggered checkpoints: poll the log and re-save + truncate
    // past the threshold. Runs next to the acceptor, not on it.
    if let Some(v) = args.flags.get("checkpoint-bytes") {
        let threshold: u64 = v
            .parse()
            .map_err(|_| format!("--checkpoint-bytes: not a byte count: '{v}'"))?;
        if opened.wal_bytes().is_none() {
            return Err("--checkpoint-bytes needs --wal".to_string());
        }
        let o = Arc::clone(&opened);
        let s = Arc::clone(&stop);
        background.push(std::thread::spawn(move || {
            while !s.load(std::sync::atomic::Ordering::SeqCst) {
                if o.wal_bytes().is_some_and(|b| b >= threshold) {
                    match o.checkpoint() {
                        Ok(Some(r)) => eprintln!(
                            "checkpoint: saved epoch {} ({} log bytes truncated)",
                            r.epoch, r.log_bytes
                        ),
                        Ok(None) => {}
                        Err(e) => eprintln!("checkpoint failed: {e}"),
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(500));
            }
        }));
    }

    // The follower loop: stream the leader's accepted batches into this
    // container. A fatal follow error (gap, divergence) also stops the
    // server — a stale replica that cannot catch up should not keep
    // answering as if it were current.
    let follow_result: Arc<std::sync::Mutex<Result<(), String>>> =
        Arc::new(std::sync::Mutex::new(Ok(())));
    if let Some(leader) = follow_addr {
        eprintln!("following {leader}");
        let o = Arc::clone(&opened);
        let s = Arc::clone(&stop);
        let handle = server.handle();
        let out = Arc::clone(&follow_result);
        background.push(std::thread::spawn(move || {
            if let Err(e) = utcq::core::serve::follow(&o, &leader, &s) {
                if let Ok(mut slot) = out.lock() {
                    *slot = Err(e.to_string());
                }
                handle.shutdown();
            }
        }));
    }

    let run = server.run().map_err(|e| e.to_string());
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    for t in background {
        let _ = t.join();
    }
    run?;
    if let Ok(slot) = follow_result.lock() {
        slot.clone()?;
    }
    eprintln!("{}", opened.cache_stats().render());
    Ok(())
}

/// Most reconnect attempts `utcq client --addr` makes per request
/// before giving up.
const CLIENT_RETRY_ATTEMPTS: u32 = 5;

/// First reconnect delay (milliseconds); doubles per attempt.
const CLIENT_RETRY_BASE_MS: u64 = 100;

/// `utcq client`: execute a newline-delimited JSON session from stdin —
/// against a running server (`--addr`), or offline against the
/// container itself (`--in`). Both modes run every request through
/// `utcq::core::wire`, so their outputs are byte-identical; the
/// serve-smoke CI job diffs them.
fn cmd_client(args: &Args) -> Result<(), String> {
    let stdin = std::io::stdin();
    if let Some(addr) = args.flags.get("addr") {
        let window: usize = args.parse_num("pipeline", 1);
        if window > 1 {
            return client_pipelined(addr, window);
        }
        let connect = || -> Result<
            (
                BufReader<std::net::TcpStream>,
                BufWriter<std::net::TcpStream>,
            ),
            String,
        > {
            let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
            let read_half = stream.try_clone().map_err(|e| e.to_string())?;
            Ok((BufReader::new(read_half), BufWriter::new(stream)))
        };
        let (mut reader, mut writer) = connect()?;
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            if line.trim().is_empty() {
                continue;
            }
            // One request may survive a dropped connection: send, and on
            // any transport failure reconnect with bounded exponential
            // backoff and re-send the same line. Queries are pure, and
            // ingest re-sends are recognized leader-side (the server
            // answers a WAL-recorded batch with `"deduped":true`), so
            // the retry is idempotent end to end.
            let mut response = String::new();
            let mut attempt: u32 = 0;
            loop {
                let sent = writer
                    .write_all(line.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                let received = sent.and_then(|()| {
                    response.clear();
                    match reader.read_line(&mut response)? {
                        0 => Err(std::io::Error::other("server closed the connection")),
                        _ => Ok(()),
                    }
                });
                match received {
                    Ok(()) => break,
                    Err(e) => {
                        if attempt >= CLIENT_RETRY_ATTEMPTS {
                            return Err(format!("{addr}: {e} (after {attempt} retries)"));
                        }
                        let delay = CLIENT_RETRY_BASE_MS << attempt.min(8);
                        let jitter = (std::process::id() as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .rotate_left(attempt)
                            % (delay / 2).max(1);
                        eprintln!("reconnecting to {addr} (attempt {}): {e}", attempt + 1);
                        std::thread::sleep(std::time::Duration::from_millis(delay + jitter));
                        attempt += 1;
                        match connect() {
                            Ok(rw) => (reader, writer) = rw,
                            Err(_) => continue, // next attempt re-dials
                        }
                    }
                }
            }
            print!("{response}");
            // A shutdown acknowledgement is the server's last word.
            let was_shutdown = matches!(
                wire::parse_request(&line),
                Ok(p) if matches!(p.request, wire::Request::Shutdown)
            );
            if was_shutdown && response.contains("\"ok\":true") {
                break;
            }
        }
        Ok(())
    } else {
        let opened = open_store(args)?;
        let writable = args.flags.contains_key("writable");
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            if line.trim().is_empty() {
                continue;
            }
            let reply = if writable {
                wire::handle_line_writable(&opened, &line)
            } else {
                wire::handle_line(&opened, &line)
            };
            println!("{}", reply.line);
            if reply.shutdown {
                break;
            }
        }
        Ok(())
    }
}

/// `utcq client --addr --pipeline N`: windowed protocol pipelining.
/// Up to `N` requests stay outstanding on one connection; responses
/// stream back in request order (the server's per-connection guarantee,
/// see `PROTOCOL.md`) and print as they arrive, so the output is still
/// byte-identical to the offline executor's. Unlike the serial mode
/// there is no reconnect-and-retry: a torn connection mid-window cannot
/// be replayed safely (some outstanding requests may have executed), so
/// transport failures are fatal.
fn client_pipelined(addr: &str, window: usize) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let read_half = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    // One entry per outstanding request: whether it was a `shutdown`
    // (whose acknowledgement is the server's last word).
    let mut outstanding: std::collections::VecDeque<bool> = std::collections::VecDeque::new();
    let mut recv_one =
        |outstanding: &mut std::collections::VecDeque<bool>| -> Result<bool, String> {
            let Some(was_shutdown) = outstanding.pop_front() else {
                return Ok(false);
            };
            let mut response = String::new();
            match reader.read_line(&mut response) {
                Ok(0) => return Err(format!("{addr}: server closed the connection mid-window")),
                Ok(_) => {}
                Err(e) => return Err(format!("{addr}: {e}")),
            }
            print!("{response}");
            Ok(was_shutdown && response.contains("\"ok\":true"))
        };

    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("{addr}: {e}"))?;
        let is_shutdown = matches!(
            wire::parse_request(&line),
            Ok(p) if matches!(p.request, wire::Request::Shutdown)
        );
        outstanding.push_back(is_shutdown);
        if is_shutdown {
            // Nothing pipelined behind a shutdown gets an answer; stop
            // sending and drain what is owed.
            break;
        }
        if outstanding.len() >= window {
            writer.flush().map_err(|e| format!("{addr}: {e}"))?;
            if recv_one(&mut outstanding)? {
                return Ok(());
            }
        }
    }
    writer.flush().map_err(|e| format!("{addr}: {e}"))?;
    while !outstanding.is_empty() {
        if recv_one(&mut outstanding)? {
            return Ok(());
        }
    }
    Ok(())
}

/// `utcq audit <lint|fuzz|sched>`: the offline correctness tooling of
/// `crates/audit` behind one subcommand (see `docs/CORRECTNESS.md`).
/// Every engine is deterministic: fixed seeds, bounded exploration,
/// checked-in allowlists. A finding is a nonzero exit so CI can gate
/// on it.
fn cmd_audit(engine: Option<&str>, args: &Args) -> Result<(), String> {
    let root = std::path::PathBuf::from(args.get("root", "."));
    match engine {
        Some("lint") => audit_lint(&root),
        Some("fuzz") => audit_fuzz(&root, args),
        Some("sched") => audit_sched(args),
        _ => Err("usage: utcq audit <lint|fuzz|sched> [--root DIR] \
             [--iters N] [--seed S] [--replay] [--bound N]"
            .to_string()),
    }
}

fn audit_lint(root: &std::path::Path) -> Result<(), String> {
    let src = root.join("crates/core/src");
    let allow = root.join("crates/audit/lint.allow");
    let report = utcq::audit::lint::run(&src, &allow)
        .map_err(|e| format!("lint: {}: {e}", src.display()))?;
    for d in &report.diags {
        eprintln!("{d}");
    }
    for u in &report.unused_allows {
        eprintln!("unused allowlist entry: {u}");
    }
    if report.is_clean() {
        println!("lint: {} hot-path file(s) clean", report.files.len());
        Ok(())
    } else {
        Err(format!(
            "lint: {} diagnostic(s), {} unused allowlist entr(y|ies)",
            report.diags.len(),
            report.unused_allows.len()
        ))
    }
}

/// Accepts both decimal and `0x`-prefixed hex (`--seed 0xC0FFEE`).
fn parse_seed(s: &str) -> Result<u64, String> {
    let t = s.trim();
    match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    }
    .map_err(|_| format!("--seed: not a number: '{s}'"))
}

fn audit_fuzz(root: &std::path::Path, args: &Args) -> Result<(), String> {
    use utcq::audit::fuzz;
    let fx = fuzz::Fixtures::load(root)
        .map_err(|e| format!("fuzz: loading fixtures under {}: {e}", root.display()))?;
    let regressions = root.join("tests/fuzz_regressions");
    if args.flags.contains_key("replay") {
        let failures = fuzz::replay_dir(&fx, &regressions).map_err(|e| e.to_string())?;
        for f in &failures {
            eprintln!("fuzz replay: [{}] {}", f.target, f.message);
        }
        return if failures.is_empty() {
            println!("fuzz replay: all regression inputs handled cleanly");
            Ok(())
        } else {
            Err(format!(
                "fuzz replay: {} regression(s) panic",
                failures.len()
            ))
        };
    }
    let target = match args.flags.get("target") {
        None => None,
        Some(t) if ["container", "wire", "wal"].contains(&t.as_str()) => Some(t.clone()),
        Some(t) => return Err(format!("--target: expected container|wire|wal, got '{t}'")),
    };
    let opts = fuzz::FuzzOpts {
        iters: args.parse_num("iters", fuzz::FuzzOpts::default().iters),
        seed: match args.flags.get("seed") {
            Some(v) => parse_seed(v)?,
            None => fuzz::FuzzOpts::default().seed,
        },
        regressions_dir: Some(regressions),
        target,
        ..fuzz::FuzzOpts::default()
    };
    let report = fuzz::run(&fx, &opts).map_err(|e| e.to_string())?;
    for f in &report.failures {
        eprintln!(
            "fuzz: [{}] iteration {}: {} (minimized to {} bytes{})",
            f.target,
            f.iteration,
            f.message,
            f.minimized_len,
            f.path
                .as_deref()
                .map(|p| format!(", saved to {}", p.display()))
                .unwrap_or_default()
        );
    }
    if report.failures.is_empty() {
        println!(
            "fuzz: {} mutated input(s) from seed {:#x}, zero panics",
            report.iters, opts.seed
        );
        Ok(())
    } else {
        Err(format!(
            "fuzz: {} distinct failure(s)",
            report.failures.len()
        ))
    }
}

fn audit_sched(args: &Args) -> Result<(), String> {
    use utcq::audit::sched;
    let bound: usize = args.parse_num("bound", 4);
    let scenarios = sched::all_scenarios();
    let mut total = 0usize;
    let mut violations = 0usize;
    for (name, budget, factory) in scenarios {
        let out = sched::explore(
            name,
            sched::SchedOpts {
                preemption_bound: bound,
                max_schedules: budget,
            },
            &factory,
        );
        total += out.schedules;
        println!(
            "sched: {name}: {} schedule(s) at bound {bound}{}",
            out.schedules,
            if out.exhausted {
                ", space exhausted"
            } else {
                ""
            }
        );
        if let Some(v) = out.violation {
            violations += 1;
            eprintln!("sched: {name}: VIOLATION: {}", v.message);
            for step in &v.trace {
                eprintln!("sched:   {step}");
            }
            eprintln!("sched:   replay schedule: {:?}", v.schedule);
        }
    }
    println!("sched: {total} schedule(s) total, {violations} violation(s)");
    if violations == 0 {
        Ok(())
    } else {
        Err(format!(
            "sched: {violations} scenario(s) violated invariants"
        ))
    }
}

fn usage() -> String {
    "usage: utcq <stats|compress|info|verify|query|serve|client|audit> \
     [--profile dk|cd|hz|tiny] \
     [--trajs N] [--seed S] [--in FILE] [--out FILE] [-n N] [--alpha A] [--limit L] \
     [--shards N] [--shard-by time|region] [--shard-interval S] [--shard-grid N] \
     [--cache-bytes N] [--cache-stats] [--addr HOST:PORT] [--threads N] [--writable] \
     [--pipeline N]\n\
     serve durability: [--wal FILE] [--fsync always|never|every:N] \
     [--checkpoint-bytes N] [--follow HOST:PORT]\n\
     audit: utcq audit <lint|fuzz|sched> [--root DIR] [--iters N] [--seed S] [--replay] \
     [--bound N] [--target container|wire|wal]"
        .to_string()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args),
        "compress" => cmd_compress(&args),
        "info" => cmd_info(&args),
        "verify" => cmd_verify(&args),
        "query" => cmd_query(&args),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "audit" => cmd_audit(
            argv.get(1).map(String::as_str),
            &Args::parse(argv.get(2..).unwrap_or(&[])),
        ),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // The old parser treated any `-…` token as a flag, so a negative
        // value was swallowed and its flag left empty.
        let args = Args::parse(&argv(&["--min-lat", "-33.9", "-n", "-1", "--eps", "-.5"]));
        assert_eq!(args.get("min-lat", ""), "-33.9");
        assert_eq!(args.parse_num::<i64>("n", 0), -1);
        assert_eq!(args.parse_num::<f64>("eps", 0.0), -0.5);
    }

    #[test]
    fn flags_without_values_still_parse() {
        let args = Args::parse(&argv(&["--verbose", "--out", "x.utcq", "-q"]));
        assert_eq!(args.get("verbose", "missing"), "");
        assert_eq!(args.get("out", ""), "x.utcq");
        assert_eq!(args.get("q", "missing"), "");
    }

    #[test]
    fn flag_heuristic() {
        assert!(is_flag_token("--out"));
        assert!(is_flag_token("-n"));
        assert!(!is_flag_token("-33.9"));
        assert!(!is_flag_token("-.5"));
        assert!(!is_flag_token("-1"));
        assert!(!is_flag_token("value"));
        assert!(!is_flag_token("33"));
    }
}
