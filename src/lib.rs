//! Umbrella crate for the UTCQ reproduction.
//!
//! Re-exports all workspace crates under one roof so examples and
//! integration tests can use a single dependency. The public API lives
//! in [`utcq_core`] (owned, `Send + Sync` [`utcq_core::Store`] /
//! [`utcq_core::ShardedStore`] behind one [`utcq_core::QueryTarget`]
//! surface, plus the [`utcq_core::serve`] TCP query service); see the
//! repository `README.md` and `docs/ARCHITECTURE.md` for the tour.
pub use utcq_audit as audit;
pub use utcq_bitio as bitio;
pub use utcq_core as core;
pub use utcq_datagen as datagen;
pub use utcq_matcher as matcher;
pub use utcq_network as network;
pub use utcq_ted as ted;
pub use utcq_traj as traj;
