//! The decode cache is a pure memoization layer: cache-enabled,
//! cache-disabled, eviction-thrashed, and concurrent query paths must all
//! return byte-identical answers on randomized stores.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq::core::query::PageRequest;
use utcq::core::stiu::StiuParams;
use utcq::core::{CompressParams, RangeQuery, Store, StoreBuilder};
use utcq::network::{Rect, RoadNetwork};
use utcq::traj::Dataset;

fn setup(seed: u64, n: usize) -> (RoadNetwork, Dataset) {
    let profile = utcq::datagen::profile::tiny();
    let (net, ds) = utcq::datagen::generate(&profile, n, seed);
    (net, ds)
}

fn build_store(net: &RoadNetwork, ds: &Dataset, cache_bytes: usize) -> Store {
    StoreBuilder::new(
        Arc::new(net.clone()),
        CompressParams::with_interval(ds.default_interval),
    )
    .stiu_params(StiuParams {
        partition_s: 900,
        grid_n: 8,
    })
    .cache_bytes(cache_bytes)
    .ingest(ds)
    .unwrap()
    .finish()
    .unwrap()
}

/// A deterministic mixed workload: per trajectory a few where/when
/// probes, plus range queries over sliding rectangles.
type WhereProbe = (u64, i64, f64);
type WhenProbe = (u64, utcq::network::EdgeId, f64, f64);
type Answers = (
    Vec<Vec<utcq::core::WhereHit>>,
    Vec<Vec<utcq::core::WhenHit>>,
    Vec<Vec<u64>>,
);

fn workload(
    net: &RoadNetwork,
    ds: &Dataset,
    rng: &mut StdRng,
) -> (Vec<WhereProbe>, Vec<WhenProbe>, Vec<RangeQuery>) {
    let mut wheres = Vec::new();
    let mut whens = Vec::new();
    let mut ranges = Vec::new();
    let bounds = net.bounding_rect();
    for tu in &ds.trajectories {
        let span = tu.times[tu.times.len() - 1] - tu.times[0];
        for _ in 0..3 {
            let t = tu.times[0] + rng.gen_range(0..=span.max(1));
            wheres.push((tu.id, t, *[0.0, 0.2, 0.5].get(rng.gen_range(0..3)).unwrap()));
        }
        let inst = tu.top_instance();
        for _ in 0..2 {
            let edge = inst.path[rng.gen_range(0..inst.path.len())];
            whens.push((tu.id, edge, rng.gen_range(0.1..0.9), 0.2));
        }
        let frac = rng.gen_range(0.1..0.4);
        let w = bounds.width() * frac;
        let h = bounds.height() * frac;
        let x = rng.gen_range(bounds.min_x..(bounds.max_x - w).max(bounds.min_x + 1e-9));
        let y = rng.gen_range(bounds.min_y..(bounds.max_y - h).max(bounds.min_y + 1e-9));
        ranges.push(RangeQuery {
            re: Rect::new(x, y, x + w, y + h),
            tq: tu.times[0] + rng.gen_range(0..=span.max(1)),
            alpha: *[0.1, 0.3, 0.6].get(rng.gen_range(0..3)).unwrap(),
        });
    }
    (wheres, whens, ranges)
}

/// Runs the whole workload on a store, twice (so the second round runs
/// against a warm cache), returning every answer.
fn answers(
    store: &Store,
    wheres: &[WhereProbe],
    whens: &[WhenProbe],
    ranges: &[RangeQuery],
) -> Answers {
    let mut w_hits = Vec::new();
    let mut n_hits = Vec::new();
    let mut r_hits = Vec::new();
    for _round in 0..2 {
        w_hits.clear();
        n_hits.clear();
        r_hits.clear();
        for &(id, t, alpha) in wheres {
            w_hits.push(
                store
                    .where_query(id, t, alpha, PageRequest::all())
                    .unwrap()
                    .into_items(),
            );
        }
        for &(id, edge, rd, alpha) in whens {
            n_hits.push(
                store
                    .when_query(id, edge, rd, alpha, PageRequest::all())
                    .unwrap()
                    .into_items(),
            );
        }
        for q in ranges {
            r_hits.push(
                store
                    .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                    .unwrap()
                    .into_items(),
            );
        }
    }
    (w_hits, n_hits, r_hits)
}

#[test]
fn cached_and_uncached_stores_answer_identically() {
    for seed in [11, 47] {
        let (net, ds) = setup(seed, 12);
        let cached = build_store(&net, &ds, utcq::core::DEFAULT_CACHE_BYTES);
        let uncached = build_store(&net, &ds, 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let (wq, nq, rq) = workload(&net, &ds, &mut rng);

        let a = answers(&cached, &wq, &nq, &rq);
        let b = answers(&uncached, &wq, &nq, &rq);
        assert_eq!(a, b, "seed {seed}: cache on/off answers diverged");

        let sc = cached.cache_stats();
        assert!(sc.hits > 0, "warm rounds should hit: {sc:?}");
        let su = uncached.cache_stats();
        assert_eq!(
            (su.hits, su.misses, su.entries),
            (0, 0, 0),
            "disabled cache must not populate: {su:?}"
        );
    }
}

#[test]
fn tiny_budget_evicts_but_stays_correct() {
    let (net, ds) = setup(29, 10);
    let reference = build_store(&net, &ds, 0);
    // About 1 KiB per shard — room for only a few entries, so the
    // working set keeps thrashing in and out.
    let thrashed = build_store(&net, &ds, utcq::core::cache::SHARD_COUNT * 1024);
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let (wq, nq, rq) = workload(&net, &ds, &mut rng);

    let a = answers(&thrashed, &wq, &nq, &rq);
    let b = answers(&reference, &wq, &nq, &rq);
    assert_eq!(a, b, "eviction-thrashed answers diverged");
    let s = thrashed.cache_stats();
    assert!(
        s.evictions > 0,
        "budget was tiny, expected evictions: {s:?}"
    );
    assert!(
        s.bytes <= thrashed.cache_bytes(),
        "resident bytes over budget: {s:?}"
    );
}

#[test]
fn shrinking_budget_at_runtime_keeps_answers() {
    let (net, ds) = setup(61, 8);
    let store = build_store(&net, &ds, utcq::core::DEFAULT_CACHE_BYTES);
    let mut rng = StdRng::seed_from_u64(7);
    let (wq, nq, rq) = workload(&net, &ds, &mut rng);
    let warm = answers(&store, &wq, &nq, &rq);
    store.set_cache_bytes(2048); // evicts most of the working set in place
    let small = answers(&store, &wq, &nq, &rq);
    store.set_cache_bytes(0); // disables caching entirely
    let off = answers(&store, &wq, &nq, &rq);
    assert_eq!(warm, small);
    assert_eq!(warm, off);
}

#[test]
fn concurrent_queries_agree_with_sequential() {
    let (net, ds) = setup(83, 10);
    let store = Arc::new(build_store(&net, &ds, utcq::core::DEFAULT_CACHE_BYTES));
    let mut rng = StdRng::seed_from_u64(99);
    let (wq, nq, rq) = workload(&net, &ds, &mut rng);

    // Sequential ground truth on an identical, separately built store.
    let solo = build_store(&net, &ds, utcq::core::DEFAULT_CACHE_BYTES);
    let want = answers(&solo, &wq, &nq, &rq);

    // Hammer one shared store from many threads, all query types at once.
    let mut handles = Vec::new();
    for t in 0..6 {
        let store = Arc::clone(&store);
        let wq = wq.clone();
        let nq = nq.clone();
        let rq = rq.clone();
        handles.push(std::thread::spawn(move || {
            // Stagger starting offsets so threads collide on different keys.
            let rot = t * 5;
            let wq: Vec<_> = wq[rot..].iter().chain(&wq[..rot]).copied().collect();
            let (w, n, r) = answers(&store, &wq, &nq, &rq);
            // Undo the rotation for comparison.
            let unrot = wq.len() - rot;
            let w: Vec<_> = w[unrot..].iter().chain(&w[..unrot]).cloned().collect();
            (w, n, r)
        }));
    }
    for h in handles {
        let got = h.join().unwrap();
        assert_eq!(got, want, "concurrent answers diverged from sequential");
    }

    // The batched parallel range path agrees with one-at-a-time pages.
    let par = store.par_range_query(&rq).unwrap();
    assert_eq!(par, want.2, "par_range_query diverged");
}

#[test]
fn par_range_query_handles_skewed_batches() {
    let (net, ds) = setup(17, 10);
    let store = build_store(&net, &ds, utcq::core::DEFAULT_CACHE_BYTES);
    let bounds = net.bounding_rect();
    // Heavily skewed: one whole-network query amid many empty ones, far
    // more queries than cores — exercises the atomic work queue.
    let mut queries = Vec::new();
    for i in 0..97 {
        let tu = &ds.trajectories[i % ds.trajectories.len()];
        let re = if i == 13 {
            bounds
        } else {
            Rect::new(
                bounds.max_x + 10.0 + i as f64,
                bounds.max_y + 10.0,
                bounds.max_x + 11.0 + i as f64,
                bounds.max_y + 11.0,
            )
        };
        queries.push(RangeQuery {
            re,
            tq: tu.times[0],
            alpha: 0.2,
        });
    }
    let par = store.par_range_query(&queries).unwrap();
    assert_eq!(par.len(), queries.len());
    for (q, got) in queries.iter().zip(&par) {
        let want = store
            .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(got, &want);
    }
}
