//! End-to-end tests of the `utcq serve` query service: a real TCP
//! server over the checked-in container fixtures, scripted client
//! sessions, and byte-for-byte comparison against the offline query
//! path (`utcq_core::wire::handle_line` on a separately opened
//! container — the same executor `utcq client --in` uses).
//!
//! Covers the serve acceptance surface: identical answers for v1/v2/v3
//! containers, pagination resume across connections, invalid/foreign
//! cursor rejection, concurrent clients against the sharded fixture,
//! and clean shutdown mid-stream.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use utcq::core::serve::{Server, ServerHandle};
use utcq::core::stiu::StiuParams;
use utcq::core::{wire, Opened, QueryTarget, Store};

/// Matches the parameters `tests/container_compat.rs` regenerates the
/// fixtures with (the v1 fixture's index is rebuilt at open time).
const STIU: StiuParams = StiuParams {
    partition_s: 900,
    grid_n: 8,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Opens a fixture by version. The v1 fixture has no embedded network,
/// so it borrows the v2 fixture's — identical by construction.
fn open_fixture(version: u8) -> Opened {
    match version {
        1 => {
            let v2 = Store::open(fixture_path("tiny_v2.utcq")).expect("v2 fixture opens");
            Opened::open_v1(fixture_path("tiny_v1.utcq"), Arc::clone(v2.network()), STIU)
                .expect("v1 fixture opens")
        }
        2 => Opened::open(fixture_path("tiny_v2.utcq")).expect("v2 fixture opens"),
        3 => Opened::open(fixture_path("tiny_v3.utcq")).expect("v3 fixture opens"),
        other => panic!("no fixture for version {other}"),
    }
}

/// Binds an ephemeral port and runs the server on a background thread.
fn start(opened: Arc<Opened>, threads: usize) -> (SocketAddr, ServerHandle, ServerRunner) {
    let server = Server::bind(opened, "127.0.0.1:0", threads).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, ServerRunner(Some(runner)))
}

/// Joins the server thread on drop (after tests shut it down), so a
/// failed assertion can't leak a blocked thread past the test.
struct ServerRunner(Option<std::thread::JoinHandle<()>>);

impl ServerRunner {
    fn join(mut self) {
        self.0.take().unwrap().join().expect("server thread");
    }
}

impl Drop for ServerRunner {
    fn drop(&mut self) {
        if let Some(h) = self.0.take() {
            h.join().ok();
        }
    }
}

/// One protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        Self {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }

    /// Sends one request line, returns the response line (trimmed).
    fn roundtrip(&mut self, request: &str) -> String {
        self.send(request);
        self.recv().expect("response line")
    }

    fn send(&mut self, request: &str) {
        self.writer.write_all(request.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(line.trim_end().to_string()),
        }
    }
}

/// A probe workload derived from the container itself: every
/// trajectory's where/when at its mid time, plus paginated range scans
/// over the network bounds.
fn probe_requests(opened: &Opened) -> Vec<String> {
    let mut requests = Vec::new();
    let bounds = opened.network().bounding_rect();
    for snap in opened.snapshots() {
        for j in 0..snap.len() as u32 {
            let ct = &snap.compressed().trajectories[j as usize];
            let times = snap.decode_times(j).expect("decode times");
            let mid = (times[0] + times[times.len() - 1]) / 2;
            requests.push(format!(
                r#"{{"op":"where","traj":{},"t":{mid},"alpha":0}}"#,
                ct.id
            ));
            requests.push(format!(
                r#"{{"op":"where","traj":{},"t":{mid},"alpha":0,"limit":1}}"#,
                ct.id
            ));
            requests.push(format!(
                r#"{{"id":{},"op":"range","min_x":{},"min_y":{},"max_x":{},"max_y":{},"tq":{mid},"alpha":0.2,"limit":4}}"#,
                ct.id, bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y
            ));
        }
    }
    requests.push(r#"{"op":"info"}"#.to_string());
    requests.push(r#"{"op":"where","traj":424242,"t":0}"#.to_string());
    requests
}

#[test]
fn served_answers_are_byte_identical_to_offline_for_every_container_version() {
    for version in [1u8, 2, 3] {
        // Two independent openings of the same fixture: one behind the
        // server, one driven offline through the same wire executor.
        let served = Arc::new(open_fixture(version));
        let offline = open_fixture(version);
        let (addr, _handle, runner) = start(Arc::clone(&served), 2);
        let mut client = Client::connect(addr);
        for request in probe_requests(&offline) {
            let online = client.roundtrip(&request);
            let expected = wire::handle_line(&offline, &request).line;
            assert_eq!(online, expected, "v{version}: {request}");
        }
        client.roundtrip(r#"{"op":"shutdown"}"#);
        runner.join();
    }
}

/// Extracts the `next_cursor` string from a response line.
fn next_cursor(response: &str) -> Option<String> {
    let tag = "\"next_cursor\":\"";
    let start = response.find(tag)? + tag.len();
    let end = response[start..].find('"')? + start;
    Some(response[start..end].to_string())
}

/// Extracts the `"items":[…]` payload from a response line.
fn items(response: &str) -> &str {
    let tag = "\"items\":[";
    let start = response.find(tag).expect("items field") + tag.len();
    let end = response[start..].find(']').expect("items close") + start;
    &response[start..end]
}

#[test]
fn pagination_resumes_across_connections() {
    let opened = Arc::new(open_fixture(3));
    let offline = open_fixture(3);
    let (addr, _handle, runner) = start(Arc::clone(&opened), 2);

    // The full answer in one page, as ground truth.
    let full = wire::handle_line(&offline, r#"{"op":"where","traj":0,"t":71582,"alpha":0}"#).line;
    let full_items = items(&full);
    assert!(!full_items.is_empty());

    // Page 1 on connection A; resume on a brand-new connection B with
    // the cursor A minted (cursors are store state, not connection
    // state).
    let mut a = Client::connect(addr);
    let page1 = a.roundtrip(r#"{"op":"where","traj":0,"t":71582,"alpha":0,"limit":1}"#);
    assert!(page1.contains(r#""has_more":true"#), "{page1}");
    let cursor = next_cursor(&page1).expect("page 1 mints a cursor");
    drop(a);

    let mut b = Client::connect(addr);
    let page2 = b.roundtrip(&format!(
        r#"{{"op":"where","traj":0,"t":71582,"alpha":0,"limit":1024,"cursor":"{cursor}"}}"#
    ));
    assert!(page2.contains(r#""has_more":false"#), "{page2}");
    let walked = format!("{},{}", items(&page1), items(&page2));
    assert_eq!(
        walked, full_items,
        "paginated walk must equal the full answer"
    );

    // Keyset range cursors resume across connections too.
    let bounds = offline.network().bounding_rect();
    let range_req = |cursor: &str| {
        format!(
            r#"{{"op":"range","min_x":{},"min_y":{},"max_x":{},"max_y":{},"tq":71582,"alpha":0,"limit":1{}}}"#,
            bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y, cursor
        )
    };
    let r1 = b.roundtrip(&range_req(""));
    if let Some(c) = next_cursor(&r1) {
        let mut c3 = Client::connect(addr);
        let r2 = c3.roundtrip(&range_req(&format!(r#","cursor":"{c}""#)));
        assert!(r2.contains(r#""ok":true"#), "{r2}");
    }

    b.roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

#[test]
fn invalid_and_foreign_cursors_are_rejected() {
    let opened = Arc::new(open_fixture(3));
    let (addr, _handle, runner) = start(Arc::clone(&opened), 2);
    let mut client = Client::connect(addr);

    // Not a u64 at all.
    let resp = client.roundtrip(r#"{"op":"where","traj":0,"t":71582,"cursor":"xyz"}"#);
    assert!(resp.contains(r#""code":"invalid_cursor""#), "{resp}");

    // A structurally valid cursor minted for the wrong shard: trajectory
    // 0 lives in shard 2 of the v3 fixture, so a shard-0-tagged offset
    // cursor must be rejected, not silently paginate wrong.
    let resp = client.roundtrip(r#"{"op":"where","traj":0,"t":71582,"cursor":"999"}"#);
    assert!(resp.contains(r#""code":"invalid_cursor""#), "{resp}");

    // The connection survives rejected requests.
    let resp = client.roundtrip(r#"{"id":9,"op":"ping"}"#);
    assert_eq!(resp, r#"{"id":9,"ok":true,"op":"ping"}"#);

    client.roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

#[test]
fn concurrent_clients_get_identical_answers_on_the_sharded_fixture() {
    let opened = Arc::new(open_fixture(3));
    let offline = open_fixture(3);
    let (addr, _handle, runner) = start(Arc::clone(&opened), 4);

    let requests = probe_requests(&offline);
    let expected: Vec<String> = requests
        .iter()
        .map(|r| wire::handle_line(&offline, r).line)
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let requests = &requests;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for (request, want) in requests.iter().zip(expected) {
                    // Skip the stateful cache_stats-style probes; every
                    // query answer must be identical under concurrency.
                    let got = client.roundtrip(request);
                    assert_eq!(&got, want, "{request}");
                }
            });
        }
    });

    Client::connect(addr).roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

#[test]
fn clean_shutdown_mid_stream() {
    let opened = Arc::new(open_fixture(3));
    let (addr, _handle, runner) = start(Arc::clone(&opened), 2);

    // Connection A is mid-session: it has received one complete page
    // and still holds the connection open.
    let mut a = Client::connect(addr);
    let page = a.roundtrip(r#"{"op":"where","traj":0,"t":71582,"alpha":0,"limit":1}"#);
    assert!(page.contains(r#""ok":true"#), "{page}");

    // Connection B asks for shutdown and gets a complete
    // acknowledgement line — never a truncated response.
    let mut b = Client::connect(addr);
    let ack = b.roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(ack, r#"{"ok":true,"op":"shutdown"}"#);

    // The server drains: run() returns, and A's stream ends with EOF
    // (clean close), not a hang.
    runner.join();
    a.send(r#"{"op":"ping"}"#);
    assert_eq!(a.recv(), None, "connection A must see a clean EOF");
}

#[test]
fn oversized_request_is_rejected_and_the_connection_survives() {
    let opened = Arc::new(open_fixture(3));
    let (addr, _handle, runner) = start(Arc::clone(&opened), 1);
    let mut client = Client::connect(addr);

    // Just past the 1 MiB cap: rejected with the same bad_request the
    // offline executor produces, without buffering the line unbounded.
    let big = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(1 << 20));
    let resp = client.roundtrip(&big);
    assert!(resp.contains(r#""code":"bad_request""#), "{resp}");
    assert!(resp.contains("1 MiB"), "{resp}");

    // The remainder of the over-long line was drained: the connection
    // resynchronizes and keeps answering.
    let resp = client.roundtrip(r#"{"id":1,"op":"ping"}"#);
    assert_eq!(resp, r#"{"id":1,"ok":true,"op":"ping"}"#);

    client.roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

/// The probe trajectory the writable session ingests: trajectory 0 of
/// the fixture dataset, re-identified and time-shifted out of every
/// existing span, probabilities renormalized so the wire-level
/// validation accepts the (lossily) decompressed copy.
fn writable_probe() -> (utcq::traj::UncertainTrajectory, i64) {
    let v2 = Store::open(fixture_path("tiny_v2.utcq")).expect("v2 fixture opens");
    let snap = v2.snapshot();
    let ds = utcq::core::decompress_dataset(snap.network(), snap.compressed())
        .expect("fixture decompresses");
    let mut tu = ds.trajectories[0].clone();
    tu.id = 100;
    for t in &mut tu.times {
        *t += 7200;
    }
    let sum: f64 = tu.instances.iter().map(|i| i.prob).sum();
    for inst in &mut tu.instances {
        inst.prob /= sum;
    }
    let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
    (tu, mid)
}

/// Serializes a trajectory into the `ingest` request shape of
/// `PROTOCOL.md`.
fn trajectory_json(tu: &utcq::traj::UncertainTrajectory) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, r#"{{"id":{},"times":["#, tu.id);
    for (i, t) in tu.times.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("],\"instances\":[");
    for (w, inst) in tu.instances.iter().enumerate() {
        if w > 0 {
            out.push(',');
        }
        let _ = write!(out, r#"{{"prob":{},"path":["#, inst.prob);
        for (i, e) in inst.path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", e.0);
        }
        out.push_str("],\"positions\":[");
        for (i, p) in inst.positions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", p.path_idx, p.rd);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// The deterministic writable session both the CI writable-serve smoke
/// job and the tests below replay: ingest, query the new trajectory,
/// hit the duplicate error path, shut down.
fn writable_session_lines() -> Vec<String> {
    let (tu, mid) = writable_probe();
    let bounds = Store::open(fixture_path("tiny_v2.utcq"))
        .unwrap()
        .network()
        .bounding_rect();
    let tu_json = trajectory_json(&tu);
    vec![
        r#"{"id":1,"op":"ping"}"#.to_string(),
        format!(r#"{{"id":2,"op":"ingest","name":"live","trajectories":[{tu_json}]}}"#),
        format!(r#"{{"id":3,"op":"where","traj":100,"t":{mid},"alpha":0}}"#),
        format!(
            r#"{{"id":4,"op":"range","min_x":{},"min_y":{},"max_x":{},"max_y":{},"tq":{mid},"alpha":0,"limit":16}}"#,
            bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y
        ),
        format!(r#"{{"id":5,"op":"ingest","trajectories":[{tu_json}]}}"#),
        format!(r#"{{"id":6,"op":"where","traj":100,"t":{mid},"alpha":0,"limit":1}}"#),
        r#"{"id":7,"op":"shutdown"}"#.to_string(),
    ]
}

#[test]
fn writable_session_fixture_stays_in_sync() {
    // The CI writable smoke job replays the checked-in file; it must
    // equal what this generator produces from the fixtures.
    let generated = writable_session_lines().join("\n") + "\n";
    let checked_in = std::fs::read_to_string(fixture_path("serve_session_writable.ndjson"))
        .expect("writable session fixture exists");
    assert_eq!(
        checked_in, generated,
        "regenerate with `cargo test --test serve -- --ignored regen_writable_session`"
    );

    // Pin the session's semantics offline (the writable executor).
    let offline = open_fixture(3);
    let replies: Vec<_> = writable_session_lines()
        .iter()
        .map(|l| wire::handle_line_writable(&offline, l))
        .collect();
    assert!(replies[0].line.contains(r#""op":"ping""#));
    assert!(
        replies[1]
            .line
            .contains(r#""op":"ingest","ingested":1,"total":11,"epoch":1"#),
        "{}",
        replies[1].line
    );
    assert!(
        replies[2].line.contains(r#""op":"where","items":[{"#),
        "the ingested trajectory answers: {}",
        replies[2].line
    );
    assert!(
        replies[3].line.contains(r#""op":"range","items":[100]"#),
        "only the ingested trajectory lives at the shifted time: {}",
        replies[3].line
    );
    assert!(
        replies[4].line.contains(r#""code":"duplicate_trajectory""#),
        "{}",
        replies[4].line
    );
    assert!(replies[5].line.contains(r#""has_more":true"#));
    assert!(replies[6].shutdown);
}

#[test]
#[ignore = "writes tests/fixtures; run after intentional protocol/fixture changes"]
fn regen_writable_session() {
    let content = writable_session_lines().join("\n") + "\n";
    std::fs::write(fixture_path("serve_session_writable.ndjson"), content).unwrap();
}

#[test]
fn writable_server_matches_offline_ingest_replay_for_v2_and_v3() {
    for version in [2u8, 3] {
        let served = Arc::new(open_fixture(version));
        let offline = open_fixture(version);
        let server = Server::bind(Arc::clone(&served), "127.0.0.1:0", 2)
            .expect("bind ephemeral port")
            .writable(true);
        let addr = server.local_addr();
        let runner = ServerRunner(Some(std::thread::spawn(move || {
            server.run().expect("server run")
        })));
        let mut client = Client::connect(addr);
        for request in writable_session_lines() {
            let online = client.roundtrip(&request);
            let expected = wire::handle_line_writable(&offline, &request).line;
            assert_eq!(online, expected, "v{version}: {request}");
        }
        // The session ends in shutdown; the server drains on its own.
        runner.join();
        // Both sides applied the ingest.
        assert_eq!(served.len(), 11, "v{version}");
        assert_eq!(offline.len(), 11, "v{version}");
    }
}

#[test]
fn read_only_server_rejects_ingest() {
    let opened = Arc::new(open_fixture(3));
    let (addr, _handle, runner) = start(Arc::clone(&opened), 2);
    let mut client = Client::connect(addr);
    let (tu, _) = writable_probe();
    let resp = client.roundtrip(&format!(
        r#"{{"id":1,"op":"ingest","trajectories":[{}]}}"#,
        trajectory_json(&tu)
    ));
    assert!(resp.contains(r#""code":"read_only""#), "{resp}");
    assert_eq!(opened.len(), 10, "nothing was published");
    client.roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

#[test]
fn queries_never_block_while_a_writable_server_ingests() {
    // Concurrency smoke at the serve layer: one connection streams
    // ingest batches while others query; every query must answer with
    // the same bytes it answered before the ingests started (probing a
    // pre-ingested trajectory — append-only ingest cannot change it).
    let served = Arc::new(open_fixture(3));
    let server = Server::bind(Arc::clone(&served), "127.0.0.1:0", 4)
        .expect("bind ephemeral port")
        .writable(true);
    let addr = server.local_addr();
    let runner = ServerRunner(Some(std::thread::spawn(move || {
        server.run().expect("server run")
    })));

    let probe = r#"{"op":"where","traj":0,"t":71582,"alpha":0}"#;
    let baseline = Client::connect(addr).roundtrip(probe);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut w = Client::connect(addr);
            let (mut tu, _) = writable_probe();
            for k in 0..4 {
                tu.id = 200 + k;
                for t in &mut tu.times {
                    *t += 600;
                }
                let resp = w.roundtrip(&format!(
                    r#"{{"op":"ingest","trajectories":[{}]}}"#,
                    trajectory_json(&tu)
                ));
                assert!(resp.contains(r#""ok":true"#), "{resp}");
            }
        });
        for _ in 0..3 {
            scope.spawn(|| {
                let mut c = Client::connect(addr);
                for _ in 0..20 {
                    assert_eq!(c.roundtrip(probe), baseline);
                }
            });
        }
    });
    assert_eq!(served.len(), 14);
    Client::connect(addr).roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

#[test]
fn invalid_line_mid_burst_answers_in_order_and_the_connection_survives() {
    // A pipelined burst where the middle lines are garbage: every line
    // still gets exactly one response, in request order, and the
    // connection keeps working afterwards.
    let opened = Arc::new(open_fixture(3));
    let (addr, _handle, runner) = start(Arc::clone(&opened), 2);
    let mut client = Client::connect(addr);

    let burst = [
        r#"{"id":1,"op":"ping"}"#,
        "this is not json",
        r#"{"id":2,"op":"ping"}"#,
        r#"{"id":3,"op":"frobnicate"}"#,
        r#"{"id":4,"op":"ping"}"#,
    ];
    for line in burst {
        client.writer.write_all(line.as_bytes()).expect("send");
        client.writer.write_all(b"\n").expect("send newline");
    }
    client.writer.flush().expect("flush burst");

    let offline = open_fixture(3);
    for line in burst {
        let online = client.recv().expect("burst response");
        assert_eq!(online, wire::handle_line(&offline, line).line, "{line}");
    }
    let resp = client.roundtrip(r#"{"id":5,"op":"ping"}"#);
    assert_eq!(resp, r#"{"id":5,"ok":true,"op":"ping"}"#);

    client.roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

#[test]
fn pipelined_writable_session_matches_offline_replay() {
    // The whole writable session — ingest, queries that must observe
    // the ingest, the duplicate error, shutdown — sent as ONE pipelined
    // burst before the first response is read. In-order burst execution
    // makes it byte-identical to the sequential offline replay.
    let served = Arc::new(open_fixture(3));
    let offline = open_fixture(3);
    let server = Server::bind(Arc::clone(&served), "127.0.0.1:0", 2)
        .expect("bind ephemeral port")
        .writable(true);
    let addr = server.local_addr();
    let runner = ServerRunner(Some(std::thread::spawn(move || {
        server.run().expect("server run")
    })));

    let mut client = Client::connect(addr);
    let lines = writable_session_lines();
    for line in &lines {
        client.writer.write_all(line.as_bytes()).expect("send");
        client.writer.write_all(b"\n").expect("send newline");
    }
    client.writer.flush().expect("flush burst");
    for line in &lines {
        let online = client.recv().expect("burst response");
        assert_eq!(
            online,
            wire::handle_line_writable(&offline, line).line,
            "{line}"
        );
    }
    // The burst ended in shutdown: the server drains and closes.
    assert_eq!(client.recv(), None, "clean EOF after the shutdown ack");
    runner.join();
    assert_eq!(served.len(), 11);
    assert_eq!(offline.len(), 11);
}

#[test]
fn slow_reader_gets_every_response_under_backpressure() {
    // A client that writes far more than the server's write buffer high
    // watermark before reading anything: the server must pause reading
    // that connection instead of buffering unboundedly, then deliver
    // every response in order once the client drains.
    let opened = Arc::new(open_fixture(3));
    let (addr, _handle, runner) = start(Arc::clone(&opened), 2);

    const N: usize = 20_000;
    let stream = TcpStream::connect(addr).expect("connect");
    let writer_stream = stream.try_clone().expect("clone stream");
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(writer_stream);
        for i in 0..N {
            writeln!(w, r#"{{"id":{i},"op":"ping"}}"#).expect("send ping");
        }
        w.flush().expect("flush pings");
    });
    // Deliberately let the response backlog build past the kernel
    // buffers and the server's high watermark before reading.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for i in 0..N {
        line.clear();
        reader.read_line(&mut line).expect("response");
        assert_eq!(
            line.trim_end(),
            format!(r#"{{"id":{i},"ok":true,"op":"ping"}}"#),
            "response {i} lost or reordered under backpressure"
        );
    }
    writer.join().expect("writer thread");

    // The server is still healthy for other clients.
    let mut c = Client::connect(addr);
    assert_eq!(
        c.roundtrip(r#"{"id":1,"op":"ping"}"#),
        r#"{"id":1,"ok":true,"op":"ping"}"#
    );
    c.roundtrip(r#"{"op":"shutdown"}"#);
    runner.join();
}

#[test]
fn checked_in_session_fixture_stays_in_sync() {
    // The serve-smoke CI job replays this exact session against the
    // binary; keep its expectations pinned here so fixture drift fails
    // fast in `cargo test` rather than only in CI.
    let session = std::fs::read_to_string(fixture_path("serve_session.ndjson")).unwrap();
    let offline = open_fixture(3);
    let mut replies = Vec::new();
    for line in session.lines().filter(|l| !l.trim().is_empty()) {
        let reply = wire::handle_line(&offline, line);
        replies.push((line.to_string(), reply));
    }
    assert_eq!(replies.len(), 10);
    assert!(replies[0].1.line.contains(r#""op":"ping""#));
    assert!(replies[1].1.line.contains(r#""shape":"sharded""#));
    assert!(replies[2].1.line.contains(r#""has_more":true"#));
    assert!(replies[3].1.line.contains(r#""has_more":false"#));
    assert!(
        replies[4].1.line.contains(r#""op":"when","items":[{"#),
        "when probe should hit: {}",
        replies[4].1.line
    );
    assert!(replies[5].1.line.contains(r#""op":"range","items":[0"#));
    assert!(replies[6].1.line.contains(r#""code":"invalid_cursor""#));
    assert!(replies[7].1.line.contains(r#""code":"unknown_op""#));
    assert!(replies[8].1.line.contains(r#""op":"cache_stats""#));
    assert!(replies[9].1.shutdown, "session must end with shutdown");
}
