//! Cross-version container compatibility against **checked-in fixture
//! files** under `tests/fixtures/`.
//!
//! The fixtures were written by the `regen_fixtures` test below (run it
//! with `cargo test --test container_compat -- --ignored regen` after an
//! *intentional* format change, and update the goldens) and must keep
//! opening — and answering identically — forever:
//!
//! * `tiny_v1.utcq` — legacy dataset-only container (needs a network
//!   supplied out of band; the test borrows the one embedded in the v2
//!   fixture, so no generator coupling);
//! * `tiny_v2.utcq` — self-contained single-store container;
//! * `tiny_v3.utcq` — sharded container, 3 `ByTime` shards.
//!
//! All three hold the same 10-trajectory dataset, so the strongest
//! check is mutual: every version must answer every probe identically.
//! A few hardcoded goldens pin the answers absolutely, so "all three
//! agree but all three are wrong" cannot slip through.

use std::path::PathBuf;
use std::sync::Arc;

use utcq::core::query::PageRequest;
use utcq::core::shard::{ByTime, ShardedStore};
use utcq::core::stiu::StiuParams;
use utcq::core::{QueryTarget, Store, StoreBuilder};

const SEED: u64 = 20_260_729;
const TRAJS: usize = 10;
const STIU: StiuParams = StiuParams {
    partition_s: 900,
    grid_n: 8,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture_dataset() -> (utcq::network::RoadNetwork, utcq::traj::Dataset) {
    utcq::datagen::generate(&utcq::datagen::profile::tiny(), TRAJS, SEED)
}

/// Opens all three fixtures. The v1 fixture has no embedded network, so
/// it reuses the v2 fixture's — the dataset is identical by
/// construction.
fn open_fixtures() -> (Store, Store, ShardedStore) {
    let v2 = Store::open(fixture_path("tiny_v2.utcq")).expect("v2 fixture opens");
    let v1 = Store::open_v1(fixture_path("tiny_v1.utcq"), Arc::clone(v2.network()), STIU)
        .expect("v1 fixture opens");
    let v3 = ShardedStore::open(fixture_path("tiny_v3.utcq")).expect("v3 fixture opens");
    (v1, v2, v3)
}

#[test]
fn all_versions_open_and_agree() {
    let (v1, v2, v3) = open_fixtures();
    assert_eq!(v1.len(), TRAJS);
    assert_eq!(v2.len(), TRAJS);
    assert_eq!(v3.len(), TRAJS);
    assert_eq!(v3.shard_count(), 3);

    let targets: Vec<(&str, &dyn QueryTarget)> = vec![("v1", &v1), ("v2", &v2), ("v3", &v3)];
    let bounds = v2.network().bounding_rect();
    // Probe every trajectory: ids and time spans come from the container
    // itself (decoded times), not from regenerating the dataset.
    let v2_snap = v2.snapshot();
    for j in 0..TRAJS as u32 {
        let ct = &v2_snap.compressed().trajectories[j as usize];
        let times = v2.decode_times(j).unwrap();
        let mid = (times[0] + times[times.len() - 1]) / 2;
        let mut answers = Vec::new();
        let mut range_answers = Vec::new();
        for (name, t) in &targets {
            let hits = t
                .where_query(ct.id, mid, 0.0, PageRequest::all())
                .unwrap()
                .into_items();
            assert!(!hits.is_empty(), "{name}: where({}) at {mid} empty", ct.id);
            answers.push((*name, hits));
            range_answers.push((
                *name,
                t.range_query(&bounds, mid, 0.2, PageRequest::all())
                    .unwrap()
                    .into_items(),
            ));
        }
        for pair in answers.windows(2) {
            assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
        }
        for pair in range_answers.windows(2) {
            assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
        }
    }
}

#[test]
fn goldens_pin_fixture_answers() {
    let (_, v2, v3) = open_fixtures();
    // Golden values recorded when the fixtures were generated (see
    // `regen_fixtures`); they pin the absolute answers.
    let ids: Vec<u64> = v2
        .snapshot()
        .compressed()
        .trajectories
        .iter()
        .map(|t| t.id)
        .collect();
    assert_eq!(ids, (0..TRAJS as u64).collect::<Vec<_>>());

    let times0 = v2.decode_times(0).unwrap();
    let golden = golden_answers();
    assert_eq!(
        (times0[0], *times0.last().unwrap()),
        (golden.t0_first, golden.t0_last),
        "trajectory 0 time span"
    );
    let mid0 = (golden.t0_first + golden.t0_last) / 2;
    let hits = v2
        .where_query(0, mid0, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(hits.len(), golden.where0_hits, "where(0) hit count");
    let bounds = v2.network().bounding_rect();
    let range = v2
        .range_query(&bounds, mid0, 0.2, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(range, golden.range0_ids, "range at t0 mid");
    // The sharded fixture distributes trajectories as recorded.
    let occupancy: Vec<usize> = v3.shards().iter().map(Store::len).collect();
    assert_eq!(occupancy, golden.v3_occupancy, "v3 shard occupancy");
}

struct Golden {
    t0_first: i64,
    t0_last: i64,
    where0_hits: usize,
    range0_ids: Vec<u64>,
    v3_occupancy: Vec<usize>,
}

fn golden_answers() -> Golden {
    Golden {
        t0_first: 71545,
        t0_last: 71620,
        where0_hits: 2,
        range0_ids: vec![0],
        v3_occupancy: vec![2, 3, 5],
    }
}

/// Regenerates the fixture files and prints fresh golden values.
/// Deliberately `#[ignore]`d: fixtures must only change when the format
/// intentionally does.
#[test]
#[ignore = "writes tests/fixtures; run after intentional format changes"]
fn regen_fixtures() {
    let (net, ds) = fixture_dataset();
    std::fs::create_dir_all(fixture_path("")).unwrap();
    let net = Arc::new(net);
    let params = utcq::core::CompressParams::with_interval(ds.default_interval);

    let single = Store::build(Arc::clone(&net), &ds, params, STIU).unwrap();
    single.save(fixture_path("tiny_v2.utcq")).unwrap();
    // v1: the legacy dataset-only framing of the same compressed form.
    let mut v1 = Vec::new();
    utcq::core::storage::save(single.snapshot().compressed(), &mut v1).unwrap();
    std::fs::write(fixture_path("tiny_v1.utcq"), v1).unwrap();

    let sharded = StoreBuilder::new(Arc::clone(&net), params)
        .stiu_params(STIU)
        .shard_by(Arc::new(ByTime { interval_s: 120 }), 3)
        .unwrap()
        .ingest(&ds)
        .unwrap()
        .finish()
        .unwrap();
    sharded.save(fixture_path("tiny_v3.utcq")).unwrap();

    let times0 = single.decode_times(0).unwrap();
    let mid0 = (times0[0] + times0.last().unwrap()) / 2;
    let hits = single
        .where_query(0, mid0, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    let bounds = net.bounding_rect();
    let range = single
        .range_query(&bounds, mid0, 0.2, PageRequest::all())
        .unwrap()
        .into_items();
    let occupancy: Vec<usize> = sharded.shards().iter().map(Store::len).collect();
    println!(
        "golden: t0_first={} t0_last={}",
        times0[0],
        times0.last().unwrap()
    );
    println!("golden: where0_hits={}", hits.len());
    println!("golden: range0_ids={range:?}");
    println!("golden: v3_occupancy={occupancy:?}");
}
