//! Publish-cost acceptance test: ingesting a batch into a live store
//! must copy O(batch) bytes, not O(store).
//!
//! The snapshot layer shares sealed chunks (`utcq::core::chunk`) across
//! epochs, so preparing the next epoch clones chunk *directories* and
//! copy-on-writes only the unsealed tails. Every such copy reports its
//! size through `utcq::core::hooks::copied`; this test grows stores to
//! 1k / 10k / 50k trajectories, publishes one identical-shaped batch
//! into each, and asserts the copied-byte counts do not scale with the
//! store (a 50k-store publish must stay within 2x of the 1k-store
//! publish).
//!
//! The same test also re-checks the container invariant under chunking:
//! a store grown across the 1024-trajectory chunk-seal boundary by live
//! ingest serializes byte-identically to an offline build, for both the
//! single and the sharded store shapes.
//!
//! Everything lives in ONE `#[test]` on purpose: the copied-bytes
//! counter is process-global and tests in a binary run on parallel
//! threads, so concurrent ingests would pollute a differenced reading.

use std::sync::Arc;

use utcq::core::hooks;
use utcq::core::shard::ByTime;
use utcq::core::{CompressParams, ShardedStore, StiuParams, Store, StoreBuilder};
use utcq::datagen::{generate_network, generate_on_network, profile, GenOptions};
use utcq::network::RoadNetwork;
use utcq::traj::Dataset;

const STIU: StiuParams = StiuParams {
    partition_s: 900,
    grid_n: 8,
};

/// Batch published into each store; identical shape at every store size
/// so the copied-byte counts are comparable.
const BATCH: usize = 64;

/// A deliberately cheap profile: the 50k-trajectory store must be
/// affordable under a debug build, and publish cost does not depend on
/// how interesting the trajectories are.
fn cheap_profile() -> utcq::datagen::DatasetProfile {
    let mut p = profile::tiny();
    p.avg_instances = 1.5;
    p.max_instances = 2;
    p.avg_edges = 4.0;
    p.max_edges = 8;
    p
}

/// One dataset of `n + BATCH` trajectories split into a base (`n`) and
/// an ingest batch (`BATCH`); splitting one generation keeps ids unique
/// across the pair.
fn base_and_batch(net: &RoadNetwork, n: usize, seed: u64) -> (Dataset, Dataset) {
    let p = cheap_profile();
    let mut base = generate_on_network(
        net,
        &p,
        &GenOptions {
            n_trajectories: n + BATCH,
            seed,
            min_instances: 1,
            max_samples: 4,
            variants: Default::default(),
        },
    );
    assert_eq!(base.trajectories.len(), n + BATCH, "generator fell short");
    let tail = base.trajectories.split_off(n);
    let batch = Dataset {
        name: base.name.clone(),
        default_interval: base.default_interval,
        trajectories: tail,
    };
    (base, batch)
}

fn build_store(net: &Arc<RoadNetwork>, base: &Dataset) -> Store {
    StoreBuilder::new(
        Arc::clone(net),
        CompressParams::with_interval(base.default_interval),
    )
    .stiu_params(STIU)
    .ingest(base)
    .unwrap()
    .finish()
    .unwrap()
}

/// Copied bytes attributable to publishing `batch` into `store`.
fn copied_during_publish(store: &Store, batch: &Dataset) -> u64 {
    let before = hooks::copied_bytes();
    store.ingest(batch).unwrap();
    hooks::copied_bytes() - before
}

#[test]
fn publish_copies_o_batch_not_o_store() {
    let net = Arc::new(generate_network(&cheap_profile(), 7));

    // --- Copy-cost ladder: 1k, 10k, 50k ------------------------------
    let mut copied = Vec::new();
    for (n, seed) in [(1_000usize, 11u64), (10_000, 12), (50_000, 13)] {
        let (base, batch) = base_and_batch(&net, n, seed);
        let store = build_store(&net, &base);
        let bytes = copied_during_publish(&store, &batch);
        assert_eq!(store.len(), n + BATCH);
        assert!(
            bytes > 0,
            "publishing into a shared snapshot must CoW at least the tail chunk"
        );
        copied.push((n, bytes));
    }
    let at = |n: usize| copied.iter().find(|(m, _)| *m == n).unwrap().1;
    assert!(
        at(50_000) <= 2 * at(1_000),
        "publish copy cost scales with the store, not the batch: \
         1k-store publish copied {} bytes, 50k-store publish copied {} bytes",
        at(1_000),
        at(50_000)
    );
    assert!(
        at(10_000) <= 2 * at(1_000),
        "10k-store publish copied {} bytes vs {} at 1k",
        at(1_000),
        at(10_000)
    );

    // --- Byte-identity across the chunk-seal boundary ----------------
    // A 1000-trajectory base plus a 64-trajectory live batch crosses
    // the 1024 seal: the live-grown chunk layout must serialize exactly
    // like the offline build.
    let (base, batch) = base_and_batch(&net, 1_000, 21);
    let p = CompressParams::with_interval(base.default_interval);

    let offline = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&base)
        .unwrap()
        .ingest(&batch)
        .unwrap()
        .finish()
        .unwrap();
    let live = build_store(&net, &base);
    live.ingest(&batch).unwrap();
    let (mut live_bytes, mut offline_bytes) = (Vec::new(), Vec::new());
    live.write(&mut live_bytes).unwrap();
    offline.write(&mut offline_bytes).unwrap();
    assert_eq!(
        live_bytes, offline_bytes,
        "live growth across a chunk seal must serialize like the offline build"
    );
    assert_eq!(
        Store::read(&mut live_bytes.as_slice()).unwrap().len(),
        1_064
    );

    // Same invariant for the sharded facade.
    let policy = || Arc::new(ByTime { interval_s: 3_600 });
    let sharded_offline = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(policy(), 3)
        .unwrap()
        .ingest(&base)
        .unwrap()
        .ingest(&batch)
        .unwrap()
        .finish()
        .unwrap();
    let sharded_live = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(policy(), 3)
        .unwrap()
        .ingest(&base)
        .unwrap()
        .finish()
        .unwrap();
    sharded_live.ingest(&batch).unwrap();
    let (mut sl, mut so) = (Vec::new(), Vec::new());
    sharded_live.write(&mut sl).unwrap();
    sharded_offline.write(&mut so).unwrap();
    assert_eq!(
        sl, so,
        "sharded live growth must serialize like the offline build"
    );
    assert_eq!(ShardedStore::read(&mut sl.as_slice()).unwrap().len(), 1_064);
}
