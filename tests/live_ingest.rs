//! Live-ingest acceptance tests for the snapshot-based store:
//!
//! * **byte-identity** — a store grown through live [`Store::ingest`] /
//!   [`ShardedStore::ingest`] serializes to the *same container bytes*
//!   as an offline [`StoreBuilder`] run over the same batches in the
//!   same order (publishing epochs adds nothing to the on-disk state);
//! * **snapshot isolation** — a pinned snapshot (and a paginated walk
//!   running on it) keeps answering with pre-ingest answers while new
//!   queries on the store see the post-ingest epoch;
//! * **cursor stability** — cursors minted before an ingest stay valid
//!   after it (ingest only appends);
//! * **concurrency** — threads querying while batches ingest never
//!   block, never error, and always see either the old or the new
//!   epoch, never a torn one (the loom-free stress test CI runs).

use std::sync::Arc;

use utcq::core::shard::ByTime;
use utcq::core::{CompressParams, PageRequest, ShardedStore, StiuParams, Store, StoreBuilder};
use utcq::datagen::{generate_network, generate_on_network, GenOptions};
use utcq::network::RoadNetwork;
use utcq::traj::Dataset;

const STIU: StiuParams = StiuParams {
    partition_s: 900,
    grid_n: 8,
};

/// A tiny dataset split into three arrival batches.
fn batches(n: usize, seed: u64) -> (Arc<RoadNetwork>, Vec<Dataset>) {
    let (net, mut ds) = utcq::datagen::generate(&utcq::datagen::profile::tiny(), n, seed);
    let third = n / 3;
    let mut b2 = ds.clone();
    let mut b3 = ds.clone();
    let tail = ds.trajectories.split_off(third);
    b2.trajectories = tail;
    b3.trajectories = b2.trajectories.split_off(third);
    (Arc::new(net), vec![ds, b2, b3])
}

fn params(ds: &Dataset) -> CompressParams {
    CompressParams::with_interval(ds.default_interval)
}

/// A dataset big enough to cross 1024-trajectory chunk-seal boundaries
/// while staying affordable under a debug build: short paths, at most
/// two instances, at most four samples.
fn cheap_dataset(n: usize, seed: u64) -> (Arc<RoadNetwork>, Dataset) {
    let mut p = utcq::datagen::profile::tiny();
    p.avg_instances = 1.5;
    p.max_instances = 2;
    p.avg_edges = 4.0;
    p.max_edges = 8;
    let net = generate_network(&p, seed ^ 0x9E37);
    let ds = generate_on_network(
        &net,
        &p,
        &GenOptions {
            n_trajectories: n,
            seed,
            min_instances: 1,
            max_samples: 4,
            variants: Default::default(),
        },
    );
    assert_eq!(ds.trajectories.len(), n, "generator fell short");
    (Arc::new(net), ds)
}

fn container_bytes_single(store: &Store) -> Vec<u8> {
    let mut bytes = Vec::new();
    store.write(&mut bytes).unwrap();
    bytes
}

#[test]
fn live_ingest_matches_offline_build_byte_for_byte() {
    let (net, batches) = batches(9, 41);
    let p = params(&batches[0]);

    // Offline: all three batches through the builder.
    let offline = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .ingest(&batches[1])
        .unwrap()
        .ingest(&batches[2])
        .unwrap()
        .finish()
        .unwrap();

    // Live: first batch offline, the rest through the live writer.
    let live = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    let r1 = live.ingest(&batches[1]).unwrap();
    let r2 = live.ingest(&batches[2]).unwrap();
    assert_eq!(r1.epoch, 1);
    assert_eq!(r2.epoch, 2);
    assert_eq!(r2.total, 9);

    assert_eq!(
        container_bytes_single(&live),
        container_bytes_single(&offline),
        "published snapshots must be byte-identical to the offline build"
    );
}

#[test]
fn sharded_live_ingest_matches_offline_build_byte_for_byte() {
    let (net, batches) = batches(9, 42);
    let p = params(&batches[0]);
    let policy = || Arc::new(ByTime { interval_s: 120 });

    let offline = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(policy(), 3)
        .unwrap()
        .ingest(&batches[0])
        .unwrap()
        .ingest(&batches[1])
        .unwrap()
        .ingest(&batches[2])
        .unwrap()
        .finish()
        .unwrap();

    let live = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(policy(), 3)
        .unwrap()
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    live.ingest(&batches[1]).unwrap();
    let report = live.ingest(&batches[2]).unwrap();
    assert_eq!(report.total, 9);
    assert_eq!(live.facade_epoch(), 2);

    let mut live_bytes = Vec::new();
    live.write(&mut live_bytes).unwrap();
    let mut offline_bytes = Vec::new();
    offline.write(&mut offline_bytes).unwrap();
    assert_eq!(
        live_bytes, offline_bytes,
        "sharded live ingest must serialize identically to the offline build"
    );

    // And the container reopens with everything routed.
    let reopened = ShardedStore::read(&mut live_bytes.as_slice()).unwrap();
    assert_eq!(reopened.len(), 9);
}

#[test]
fn live_name_adoption_matches_builder_even_on_empty_sub_batches() {
    // The offline builder adopts a batch's name on *every* shard (and
    // from batches that route nothing to a shard, or are empty
    // outright); the live path must serialize identically in those
    // corners too.
    let (net, mut batches) = batches(9, 48);
    let p = params(&batches[0]);
    batches[0].name = String::new(); // bootstrap unnamed
    batches[1].name = "late-name".into();
    let named_but_empty = Dataset {
        name: "late-name".into(),
        default_interval: batches[0].default_interval,
        trajectories: Vec::new(),
    };

    // Single store: an empty-but-named live batch adopts the label.
    let single_offline = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .ingest(&named_but_empty)
        .unwrap()
        .finish()
        .unwrap();
    let single_live = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    single_live.ingest(&named_but_empty).unwrap();
    assert_eq!(
        container_bytes_single(&single_live),
        container_bytes_single(&single_offline),
        "empty named batch must adopt the label like the builder does"
    );

    // Sharded: batch 1's trajectories cannot cover every shard of a
    // 7-shard store, so some shards see an empty-but-named sub-batch.
    let policy = || Arc::new(ByTime { interval_s: 120 });
    let offline = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(policy(), 7)
        .unwrap()
        .ingest(&batches[0])
        .unwrap()
        .ingest(&batches[1])
        .unwrap()
        .finish()
        .unwrap();
    let live = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(policy(), 7)
        .unwrap()
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    live.ingest(&batches[1]).unwrap();
    let mut live_bytes = Vec::new();
    live.write(&mut live_bytes).unwrap();
    let mut offline_bytes = Vec::new();
    offline.write(&mut offline_bytes).unwrap();
    assert_eq!(
        live_bytes, offline_bytes,
        "shards with empty sub-batches must still adopt the batch name"
    );
}

#[test]
fn pinned_snapshot_keeps_pre_ingest_answers() {
    let (net, batches) = batches(9, 43);
    let p = params(&batches[0]);
    let store = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    let pre_len = store.len();
    let probe_id = batches[0].trajectories[0].id;
    let times = store
        .decode_times(store.traj_index(probe_id).unwrap())
        .unwrap();
    let mid = (times[0] + times[times.len() - 1]) / 2;
    let bounds = net.bounding_rect();

    // Pin the pre-ingest epoch and collect its ground truth.
    let pinned = store.snapshot();
    let pre_range = pinned
        .range_query(&bounds, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    let full_where = pinned
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();

    // Start a paginated walk on the pinned snapshot, one item per page,
    // ingesting the remaining batches midway through the walk.
    let mut walked = Vec::new();
    let mut req = PageRequest::first(1);
    let mut pages = 0;
    loop {
        let page = pinned.where_query(probe_id, mid, 0.0, req).unwrap();
        walked.extend(page.items);
        pages += 1;
        if pages == 1 {
            store.ingest(&batches[1]).unwrap();
            store.ingest(&batches[2]).unwrap();
        }
        match page.next_cursor {
            Some(c) => req = PageRequest::after(c, 1),
            None => break,
        }
    }
    assert_eq!(
        walked, full_where,
        "a walk on the pinned snapshot completes with pre-ingest answers"
    );

    // The pinned view still answers as of its epoch …
    assert_eq!(pinned.len(), pre_len);
    assert_eq!(
        pinned
            .range_query(&bounds, mid, 0.0, PageRequest::all())
            .unwrap()
            .into_items(),
        pre_range
    );
    let new_id = batches[1].trajectories[0].id;
    assert!(
        pinned
            .where_query(new_id, mid, 0.0, PageRequest::all())
            .unwrap()
            .items
            .is_empty()
            || pinned.traj_index(new_id).is_none(),
        "the pinned snapshot must not know post-ingest trajectories"
    );
    assert!(pinned.traj_index(new_id).is_none());

    // … while the store sees the new epoch.
    assert_eq!(store.len(), 9);
    assert!(store.traj_index(new_id).is_some());
    let new_times = store
        .decode_times(store.traj_index(new_id).unwrap())
        .unwrap();
    let new_mid = (new_times[0] + new_times[new_times.len() - 1]) / 2;
    assert!(!store
        .where_query(new_id, new_mid, 0.0, PageRequest::all())
        .unwrap()
        .items
        .is_empty());
}

#[test]
fn cursors_minted_before_ingest_stay_valid_after() {
    let (net, batches) = batches(9, 44);
    let p = params(&batches[0]);
    let store = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    let probe_id = batches[0].trajectories[0].id;
    let times = store
        .decode_times(store.traj_index(probe_id).unwrap())
        .unwrap();
    let mid = (times[0] + times[times.len() - 1]) / 2;

    let full = store
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    let page1 = store
        .where_query(probe_id, mid, 0.0, PageRequest::first(1))
        .unwrap();
    let cursor = page1.next_cursor.expect("more than one instance");

    store.ingest(&batches[1]).unwrap();

    // The pre-ingest cursor resumes cleanly on the post-ingest store:
    // appends cannot change an existing trajectory's answer.
    let rest = store
        .where_query(probe_id, mid, 0.0, PageRequest::after(cursor, 1024))
        .unwrap();
    let mut walked = page1.items;
    walked.extend(rest.items);
    assert_eq!(walked, full);
}

/// The loom-free concurrency stress test CI runs: reader threads hammer
/// where/when/range against ids of the first batch (whose answers are
/// invariant under append-only ingest) while the writer publishes the
/// remaining batches; every answer must equal the pre-ingest baseline
/// and nothing may error or deadlock.
#[test]
fn concurrent_ingest_and_queries_stress() {
    let (net, all) = batches(12, 45);
    let p = params(&all[0]);
    let store = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&all[0])
        .unwrap()
        .finish()
        .unwrap();

    // Baselines for the first batch's trajectories.
    struct Probe {
        id: u64,
        mid: i64,
        edge: utcq::network::EdgeId,
        where_hits: usize,
        when_hits: usize,
    }
    let probes: Vec<Probe> = all[0]
        .trajectories
        .iter()
        .map(|tu| {
            let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
            let edge = tu.top_instance().path[0];
            let where_hits = store
                .where_query(tu.id, mid, 0.0, PageRequest::all())
                .unwrap()
                .items
                .len();
            let when_hits = store
                .when_query(tu.id, edge, 0.5, 0.0, PageRequest::all())
                .unwrap()
                .items
                .len();
            Probe {
                id: tu.id,
                mid,
                edge,
                where_hits,
                when_hits,
            }
        })
        .collect();

    let total: usize = all.iter().map(|b| b.trajectories.len()).sum();
    std::thread::scope(|scope| {
        let store = &store;
        let probes = &probes;
        let writer = scope.spawn(move || {
            for batch in &all[1..] {
                store.ingest(batch).unwrap();
            }
        });
        for t in 0..4 {
            scope.spawn(move || {
                for round in 0..60 {
                    let probe = &probes[(t * 13 + round) % probes.len()];
                    let w = store
                        .where_query(probe.id, probe.mid, 0.0, PageRequest::all())
                        .unwrap();
                    assert_eq!(w.items.len(), probe.where_hits, "id {}", probe.id);
                    let n = store
                        .when_query(probe.id, probe.edge, 0.5, 0.0, PageRequest::all())
                        .unwrap();
                    assert_eq!(n.items.len(), probe.when_hits, "id {}", probe.id);
                    // Range answers grow monotonically but must always
                    // contain every pre-ingest match they contained.
                    let bounds = store.network().bounding_rect();
                    let r = store
                        .range_query(&bounds, probe.mid, 0.0, PageRequest::all())
                        .unwrap();
                    assert!(r.items.windows(2).all(|w| w[0] < w[1]), "ids ascend");
                }
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(store.len(), total);
}

/// The same stress shape across the sharded facade: per-shard
/// compression fan-out, facade republication, concurrent readers.
#[test]
fn concurrent_sharded_ingest_and_queries_stress() {
    let (net, all) = batches(12, 46);
    let p = params(&all[0]);
    let store = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(Arc::new(ByTime { interval_s: 120 }), 3)
        .unwrap()
        .ingest(&all[0])
        .unwrap()
        .finish()
        .unwrap();

    let first = &all[0].trajectories;
    let baseline: Vec<(u64, i64, usize)> = first
        .iter()
        .map(|tu| {
            let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
            let hits = store
                .where_query(tu.id, mid, 0.0, PageRequest::all())
                .unwrap()
                .items
                .len();
            (tu.id, mid, hits)
        })
        .collect();

    let total: usize = all.iter().map(|b| b.trajectories.len()).sum();
    std::thread::scope(|scope| {
        let store = &store;
        let baseline = &baseline;
        let writer = scope.spawn(move || {
            for batch in &all[1..] {
                store.ingest(batch).unwrap();
            }
        });
        for t in 0..4 {
            scope.spawn(move || {
                for round in 0..60 {
                    let (id, mid, hits) = baseline[(t * 7 + round) % baseline.len()];
                    let w = store.where_query(id, mid, 0.0, PageRequest::all()).unwrap();
                    assert_eq!(w.items.len(), hits, "id {id}");
                    let bounds = store.network().bounding_rect();
                    let r = store
                        .range_query(&bounds, mid, 0.0, PageRequest::all())
                        .unwrap();
                    assert!(r.items.windows(2).all(|w| w[0] < w[1]));
                }
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(store.len(), total);

    // A consistent checkpoint taken after the dust settles reopens whole.
    let mut bytes = Vec::new();
    store.write(&mut bytes).unwrap();
    assert_eq!(
        ShardedStore::read(&mut bytes.as_slice()).unwrap().len(),
        total
    );
}

/// Epoch-keyed decode-cache entries: post-ingest queries repopulate
/// under the new epoch and answers stay byte-identical to a cold store.
#[test]
fn cache_stays_correct_across_epochs() {
    let (net, batches) = batches(9, 47);
    let p = params(&batches[0]);
    let store = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    let probe_id = batches[0].trajectories[0].id;
    let times = store
        .decode_times(store.traj_index(probe_id).unwrap())
        .unwrap();
    let mid = (times[0] + times[times.len() - 1]) / 2;

    // Warm the epoch-0 cache, ingest, then query again: the epoch-1
    // lookups miss (different keys) but answer identically.
    let warm = store
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    store.ingest(&batches[1]).unwrap();
    let after = store
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(warm, after);

    // Against a from-scratch store over both batches (cache cold), the
    // answers are also identical.
    let fresh = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .ingest(&batches[1])
        .unwrap()
        .finish()
        .unwrap();
    let cold = fresh
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(after, cold);
}

/// Batch-partition invariance: however a workload is sliced into ingest
/// batches, the published store serializes byte-identically to a
/// one-shot offline build. Seeded random partitions (batch sizes
/// 1..=64) over 1200 trajectories deliberately cross the 1024 chunk
/// seal at different offsets, for both store shapes.
#[test]
fn random_batch_partitions_match_one_shot_build() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let (net, full) = cheap_dataset(1_200, 51);
    let p = params(&full);
    let policy = || Arc::new(ByTime { interval_s: 120 });

    let offline_single = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&full)
        .unwrap()
        .finish()
        .unwrap();
    let single_bytes = container_bytes_single(&offline_single);
    let offline_sharded = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .shard_by(policy(), 3)
        .unwrap()
        .ingest(&full)
        .unwrap()
        .finish()
        .unwrap();
    let mut sharded_bytes = Vec::new();
    offline_sharded.write(&mut sharded_bytes).unwrap();

    for partition_seed in [61u64, 62] {
        let mut rng = StdRng::seed_from_u64(partition_seed);
        let mut batches = Vec::new();
        let mut i = 0;
        while i < full.trajectories.len() {
            let take = rng.gen_range(1..=64usize).min(full.trajectories.len() - i);
            batches.push(Dataset {
                name: full.name.clone(),
                default_interval: full.default_interval,
                trajectories: full.trajectories[i..i + take].to_vec(),
            });
            i += take;
        }

        // Replay every batch through the live single-store writer,
        // bootstrapping from an empty store.
        let live = StoreBuilder::new(Arc::clone(&net), p)
            .stiu_params(STIU)
            .finish()
            .unwrap();
        for b in &batches {
            live.ingest(b).unwrap();
        }
        assert_eq!(live.len(), full.trajectories.len());
        assert_eq!(
            container_bytes_single(&live),
            single_bytes,
            "partition seed {partition_seed}: live batching must not leak into the container"
        );

        // And through the sharded facade.
        let live_sharded = StoreBuilder::new(Arc::clone(&net), p)
            .stiu_params(STIU)
            .shard_by(policy(), 3)
            .unwrap()
            .finish()
            .unwrap();
        for b in &batches {
            live_sharded.ingest(b).unwrap();
        }
        let mut live_bytes = Vec::new();
        live_sharded.write(&mut live_bytes).unwrap();
        assert_eq!(
            live_bytes, sharded_bytes,
            "partition seed {partition_seed}: sharded live batching must not leak into the container"
        );
    }
}

/// Mid-walk stress across chunk seals: a paginated walk pinned before
/// three publishes — each of which seals a 1024-trajectory chunk —
/// still yields exactly the pre-ingest item sequence, and the decode
/// cache answers identically to a cold store over the chunked state.
#[test]
fn pinned_walk_survives_chunk_sealing_publishes() {
    let (net, mut full) = cheap_dataset(4_072, 52);
    let p = params(&full);

    // base = 1000, then 1024-sized batches: each publish crosses (and
    // seals) exactly one chunk boundary — 1024, 2048, then 3072.
    let split = |ds: &mut Dataset, at: usize| Dataset {
        name: ds.name.clone(),
        default_interval: ds.default_interval,
        trajectories: ds.trajectories.split_off(at),
    };
    let mut rest = split(&mut full, 1_000);
    let mut b2 = split(&mut rest, 1_024);
    let b3 = split(&mut b2, 1_024);
    let (base, b1) = (full, rest);

    let store = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&base)
        .unwrap()
        .finish()
        .unwrap();
    let probe_id = base.trajectories[0].id;
    let times = store
        .decode_times(store.traj_index(probe_id).unwrap())
        .unwrap();
    let mid = (times[0] + times[times.len() - 1]) / 2;

    let pinned = store.snapshot();
    let full_where = pinned
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    let warm = store
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();

    // Walk one item per page; the three sealing publishes land after
    // the first page.
    let mut walked = Vec::new();
    let mut req = PageRequest::first(1);
    let mut pages = 0;
    loop {
        let page = pinned.where_query(probe_id, mid, 0.0, req).unwrap();
        walked.extend(page.items);
        pages += 1;
        if pages == 1 {
            for (i, b) in [&b1, &b2, &b3].into_iter().enumerate() {
                let report = store.ingest(b).unwrap();
                assert_eq!(report.epoch, i as u64 + 1);
            }
        }
        match page.next_cursor {
            Some(c) => req = PageRequest::after(c, 1),
            None => break,
        }
    }
    assert_eq!(
        walked, full_where,
        "a pinned walk across chunk-sealing publishes yields pre-ingest answers"
    );
    assert_eq!(pinned.len(), 1_000);
    assert_eq!(store.len(), 4_072);

    // Cross-epoch decode-cache equivalence over the chunked state: the
    // warmed store answers like before the publishes, and like a
    // one-shot cold store over all four chunks.
    let after = store
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(warm, after);
    let fresh = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&base)
        .unwrap()
        .ingest(&b1)
        .unwrap()
        .ingest(&b2)
        .unwrap()
        .ingest(&b3)
        .unwrap()
        .finish()
        .unwrap();
    let cold = fresh
        .where_query(probe_id, mid, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(after, cold);
    let new_id = b3.trajectories[0].id;
    assert!(pinned.traj_index(new_id).is_none());
    assert!(store.traj_index(new_id).is_some());
}

/// A paginated **range** walk that straddles a live ingest, with the
/// epoch-keyed range-result cache warm on both sides of the publish.
///
/// * A walk on the *store* resumes with its pre-ingest cursor and sees
///   the post-ingest epoch from that point on (keyset semantics: the
///   remainder equals the fresh full answer past the cursor), even
///   though both epochs have complete cached range results.
/// * A walk on a *pinned snapshot* completes entirely in the
///   pre-ingest epoch — the newer epoch's cache entry is never served
///   to it (cache keys carry the epoch).
/// * A live-grown store answers the warm range workload byte-identical
///   to an offline build over the same batches.
#[test]
fn paginated_range_walk_resumes_across_mid_walk_ingest() {
    let (net, mut batches) = batches(12, 46);
    // The generator scatters start times across a day, so spans rarely
    // overlap and no instant matches more than one trajectory. Shift
    // every span onto a common window (a constant shift keeps the time
    // sequence strictly increasing and the trajectory valid) so the
    // walk has several pages to straddle the ingest with.
    for b in &mut batches {
        for (i, tu) in b.trajectories.iter_mut().enumerate() {
            let shift = 10_000 + (i as i64 % 3) * 40 - tu.times[0];
            for t in &mut tu.times {
                *t += shift;
            }
        }
    }
    let p = params(&batches[0]);
    let store = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .finish()
        .unwrap();
    let bounds = net.bounding_rect();
    let tq = 10_150;

    // Warm the pre-ingest epoch's cache with the complete answer.
    let pre_full = store
        .range_query(&bounds, tq, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    assert!(
        pre_full.len() >= 2,
        "need a multi-page answer to straddle the ingest"
    );
    let pinned = store.snapshot();

    // First page on the store (served from the cached full result) and
    // first page on the pinned snapshot.
    let store_p1 = store
        .range_query(&bounds, tq, 0.0, PageRequest::first(1))
        .unwrap();
    let store_cursor = store_p1.next_cursor.expect("more than one match");
    let pin_p1 = pinned
        .range_query(&bounds, tq, 0.0, PageRequest::first(1))
        .unwrap();
    let pin_cursor = pin_p1.next_cursor.expect("more than one match");

    // Publish two more batches mid-walk and warm the *new* epoch's
    // cache too — the adversarial setup: both epochs now hold complete
    // cached answers for the same query shape.
    store.ingest(&batches[1]).unwrap();
    store.ingest(&batches[2]).unwrap();
    let post_full = store
        .range_query(&bounds, tq, 0.0, PageRequest::all())
        .unwrap()
        .into_items();
    assert!(
        post_full.len() > pre_full.len(),
        "ingest must add matches for the test to bite"
    );

    // The store walk resumes on the new epoch: keyset remainder.
    let mut store_walked = store_p1.items.clone();
    let mut req = PageRequest::after(store_cursor, 1);
    loop {
        let page = store.range_query(&bounds, tq, 0.0, req).unwrap();
        store_walked.extend(page.items);
        match page.next_cursor {
            Some(c) => req = PageRequest::after(c, 1),
            None => break,
        }
    }
    let last_pre = store_p1.items[0];
    let expect: Vec<u64> = store_p1
        .items
        .iter()
        .copied()
        .chain(post_full.iter().copied().filter(|&id| id > last_pre))
        .collect();
    assert_eq!(
        store_walked, expect,
        "resumed store walk = first page + post-ingest remainder past the cursor"
    );

    // The pinned walk stays entirely in the pre-ingest epoch.
    let mut pin_walked = pin_p1.items.clone();
    let mut req = PageRequest::after(pin_cursor, 1);
    loop {
        let page = pinned.range_query(&bounds, tq, 0.0, req).unwrap();
        pin_walked.extend(page.items);
        match page.next_cursor {
            Some(c) => req = PageRequest::after(c, 1),
            None => break,
        }
    }
    assert_eq!(
        pin_walked, pre_full,
        "pinned walk must never observe the newer epoch's cached result"
    );

    // Live-grown vs offline-built, warm cache on both: byte-identical.
    let offline = StoreBuilder::new(Arc::clone(&net), p)
        .stiu_params(STIU)
        .ingest(&batches[0])
        .unwrap()
        .ingest(&batches[1])
        .unwrap()
        .ingest(&batches[2])
        .unwrap()
        .finish()
        .unwrap();
    offline
        .range_query(&bounds, tq, 0.0, PageRequest::all())
        .unwrap();
    for alpha in [0.0, 0.3, 1.0] {
        let a = store
            .range_query(&bounds, tq, alpha, PageRequest::all())
            .unwrap()
            .into_items();
        let b = offline
            .range_query(&bounds, tq, alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(a, b, "live vs offline warm range (alpha {alpha})");
    }
}
