//! Sharding is a pure partitioning layer: a [`ShardedStore`] over any
//! shard count and either built-in routing policy must return
//! **byte-identical** `where`/`when`/`range` answers — and identical
//! fully paginated item sequences — to a single [`Store`] built from the
//! same dataset. This suite asserts exactly that, for 2, 4 and 7 shards
//! under both `ByTime` and `ByRegion`, through the in-memory path, the
//! v3 container roundtrip, and the parallel range path.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use utcq::core::query::PageRequest;
use utcq::core::shard::{ByRegion, ByTime, ShardPolicy, ShardedStore};
use utcq::core::stiu::StiuParams;
use utcq::core::{CompressParams, QueryTarget, RangeQuery, Store, StoreBuilder};
use utcq::network::{Rect, RoadNetwork};
use utcq::traj::Dataset;

const STIU: StiuParams = StiuParams {
    partition_s: 900,
    grid_n: 8,
};

fn setup(seed: u64, n: usize) -> (RoadNetwork, Dataset) {
    let profile = utcq::datagen::profile::tiny();
    utcq::datagen::generate(&profile, n, seed)
}

fn single_store(net: &RoadNetwork, ds: &Dataset) -> Store {
    StoreBuilder::new(
        Arc::new(net.clone()),
        CompressParams::with_interval(ds.default_interval),
    )
    .stiu_params(STIU)
    .ingest(ds)
    .unwrap()
    .finish()
    .unwrap()
}

fn sharded_store(
    net: &RoadNetwork,
    ds: &Dataset,
    policy: Arc<dyn ShardPolicy>,
    n_shards: u32,
) -> ShardedStore {
    // Split the batch in two to also exercise incremental sharded ingest.
    let mut first = ds.clone();
    let mut second = Dataset {
        name: ds.name.clone(),
        default_interval: ds.default_interval,
        trajectories: first.trajectories.split_off(ds.trajectories.len() / 2),
    };
    // Ingest in swapped order: placement must not depend on arrival order.
    std::mem::swap(&mut first, &mut second);
    StoreBuilder::new(
        Arc::new(net.clone()),
        CompressParams::with_interval(ds.default_interval),
    )
    .stiu_params(STIU)
    .shard_by(policy, n_shards)
    .unwrap()
    .ingest(&first)
    .unwrap()
    .ingest(&second)
    .unwrap()
    .finish()
    .unwrap()
}

/// A deterministic mixed workload over the dataset.
struct Workload {
    wheres: Vec<(u64, i64, f64)>,
    whens: Vec<(u64, utcq::network::EdgeId, f64, f64)>,
    ranges: Vec<RangeQuery>,
}

fn workload(net: &RoadNetwork, ds: &Dataset, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload {
        wheres: Vec::new(),
        whens: Vec::new(),
        ranges: Vec::new(),
    };
    let bounds = net.bounding_rect();
    for tu in &ds.trajectories {
        let span = tu.times[tu.times.len() - 1] - tu.times[0];
        for _ in 0..2 {
            let t = tu.times[0] + rng.gen_range(0..=span.max(1));
            w.wheres
                .push((tu.id, t, *[0.0, 0.2, 0.5].get(rng.gen_range(0..3)).unwrap()));
        }
        let inst = tu.top_instance();
        let edge = inst.path[rng.gen_range(0..inst.path.len())];
        w.whens.push((tu.id, edge, rng.gen_range(0.1..0.9), 0.2));
        let frac = rng.gen_range(0.15..0.5);
        let rw = bounds.width() * frac;
        let rh = bounds.height() * frac;
        let x = rng.gen_range(bounds.min_x..(bounds.max_x - rw).max(bounds.min_x + 1e-9));
        let y = rng.gen_range(bounds.min_y..(bounds.max_y - rh).max(bounds.min_y + 1e-9));
        w.ranges.push(RangeQuery {
            re: Rect::new(x, y, x + rw, y + rh),
            tq: tu.times[0] + rng.gen_range(0..=span.max(1)),
            alpha: *[0.1, 0.3, 0.6].get(rng.gen_range(0..3)).unwrap(),
        });
    }
    w
}

/// Walks a paginated query to exhaustion with a small page size,
/// returning the concatenated items and asserting page-shape invariants.
fn walk<T: Clone + PartialEq + std::fmt::Debug>(
    mut next: impl FnMut(PageRequest) -> utcq::core::Page<T>,
    limit: usize,
) -> Vec<T> {
    let mut req = PageRequest::first(limit);
    let mut items = Vec::new();
    for _ in 0..10_000 {
        let page = next(req);
        assert!(page.items.len() <= limit.max(1));
        items.extend(page.items);
        match (page.has_more, page.next_cursor) {
            (true, Some(c)) => req = PageRequest::after(c, limit),
            (true, None) => panic!("has_more without a cursor"),
            (false, _) => return items,
        }
    }
    panic!("pagination did not terminate");
}

fn assert_equivalent(single: &Store, sharded: &ShardedStore, w: &Workload, label: &str) {
    assert_eq!(single.len(), sharded.len(), "{label}: store sizes");
    // Full answers, byte-identical.
    for &(id, t, alpha) in &w.wheres {
        let a = single
            .where_query(id, t, alpha, PageRequest::all())
            .unwrap()
            .into_items();
        let b = sharded
            .where_query(id, t, alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(a, b, "{label}: where({id}, {t}, {alpha})");
    }
    for &(id, edge, rd, alpha) in &w.whens {
        let a = single
            .when_query(id, edge, rd, alpha, PageRequest::all())
            .unwrap()
            .into_items();
        let b = sharded
            .when_query(id, edge, rd, alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(a, b, "{label}: when({id}, {edge:?}, {rd}, {alpha})");
    }
    for q in &w.ranges {
        let a = single
            .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
            .unwrap()
            .into_items();
        let b = sharded
            .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(a, b, "{label}: range({q:?})");
    }
    // Paginated walks yield identical item sequences (cursors may
    // differ in encoding — sharded where/when cursors carry a shard tag;
    // range cursors are keyset ids and identical by construction).
    for &(id, t, alpha) in w.wheres.iter().take(8) {
        for limit in [1, 2] {
            let a = walk(|r| single.where_query(id, t, alpha, r).unwrap(), limit);
            let b = walk(|r| sharded.where_query(id, t, alpha, r).unwrap(), limit);
            assert_eq!(a, b, "{label}: paginated where({id}) limit {limit}");
        }
    }
    for &(id, edge, rd, alpha) in w.whens.iter().take(8) {
        let a = walk(|r| single.when_query(id, edge, rd, alpha, r).unwrap(), 1);
        let b = walk(|r| sharded.when_query(id, edge, rd, alpha, r).unwrap(), 1);
        assert_eq!(a, b, "{label}: paginated when({id})");
    }
    for q in w.ranges.iter().take(8) {
        for limit in [1, 3] {
            let a = walk(
                |r| single.range_query(&q.re, q.tq, q.alpha, r).unwrap(),
                limit,
            );
            let b = walk(
                |r| sharded.range_query(&q.re, q.tq, q.alpha, r).unwrap(),
                limit,
            );
            assert_eq!(a, b, "{label}: paginated range limit {limit}");
        }
    }
}

#[test]
fn sharded_matches_single_for_all_counts_and_policies() {
    let (net, ds) = setup(20_260_729, 28);
    let single = single_store(&net, &ds);
    let w = workload(&net, &ds, 99);
    for n_shards in [2u32, 4, 7] {
        for (pname, policy) in [
            (
                "time",
                Arc::new(ByTime { interval_s: 1800 }) as Arc<dyn ShardPolicy>,
            ),
            ("region", Arc::new(ByRegion { grid_n: 4 })),
        ] {
            let sharded = sharded_store(&net, &ds, policy, n_shards);
            // Trajectories actually spread across partitions (the point
            // of the exercise) unless the policy degenerates.
            let occupied = sharded.shards().iter().filter(|s| !s.is_empty()).count();
            assert!(
                occupied >= 2,
                "{pname}/{n_shards}: all trajectories on one shard"
            );
            assert_equivalent(&single, &sharded, &w, &format!("{pname}/{n_shards}"));
        }
    }
}

#[test]
fn v3_roundtrip_preserves_answers() {
    let (net, ds) = setup(4242, 20);
    let single = single_store(&net, &ds);
    let w = workload(&net, &ds, 7);
    let sharded = sharded_store(&net, &ds, Arc::new(ByTime { interval_s: 900 }), 4);
    let dir = std::env::temp_dir().join("utcq-shard-equivalence.utcq");
    sharded.save(&dir).unwrap();
    let reopened = ShardedStore::open(&dir).unwrap();
    std::fs::remove_file(&dir).ok();
    assert_eq!(reopened.shard_count(), 4);
    assert_equivalent(&single, &reopened, &w, "reopened v3");
}

#[test]
fn par_range_matches_sequential_on_shards() {
    let (net, ds) = setup(777, 24);
    let single = single_store(&net, &ds);
    let sharded = sharded_store(&net, &ds, Arc::new(ByRegion { grid_n: 8 }), 4);
    let w = workload(&net, &ds, 3);
    let par = sharded.par_range_query(&w.ranges).unwrap();
    assert_eq!(par.len(), w.ranges.len());
    for (q, got) in w.ranges.iter().zip(&par) {
        let want = single
            .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(got, &want, "par range {q:?}");
    }
}

/// The range overhaul (interval bitmaps, probability pruning, the
/// epoch-keyed range-result cache, the sharded batch engine) is pure
/// acceleration: cold scans, cache-served repeats, and paginated walks
/// sliced out of a cached full result must all return byte-identical
/// answers — across the single store, the sharded store, and every
/// container version (v1 dataset-only, v2 single, v3 sharded).
#[test]
fn range_answers_identical_cold_cached_and_across_versions() {
    let (net, ds) = setup(90_210, 26);
    let single = single_store(&net, &ds);
    let sharded = sharded_store(&net, &ds, Arc::new(ByTime { interval_s: 900 }), 3);

    // v1: dataset-only container, network supplied out of band.
    let v1_path = std::env::temp_dir().join("utcq-range-equiv-v1.utcq");
    {
        let snap = single.snapshot();
        let mut f = std::fs::File::create(&v1_path).unwrap();
        utcq::core::storage::save(snap.compressed(), &mut f).unwrap();
    }
    let v1 = Store::open_v1(&v1_path, Arc::new(net.clone()), STIU).unwrap();
    std::fs::remove_file(&v1_path).ok();
    // v2/v3: self-contained roundtrips through container bytes.
    let mut v2_bytes = Vec::new();
    single.write(&mut v2_bytes).unwrap();
    let v2 = Store::read(&mut v2_bytes.as_slice()).unwrap();
    let mut v3_bytes = Vec::new();
    sharded.write(&mut v3_bytes).unwrap();
    let v3 = ShardedStore::read(&mut v3_bytes.as_slice()).unwrap();

    let mut w = workload(&net, &ds, 55);
    // Adversarial α values ride along: α = 0 (everything with support
    // qualifies) and α = 1 (only certainty qualifies).
    let bounds = net.bounding_rect();
    let tq0 = ds.trajectories[0].times[0];
    for alpha in [0.0, 1.0] {
        w.ranges.push(RangeQuery {
            re: bounds,
            tq: tq0,
            alpha,
        });
    }

    let targets: Vec<(&str, &dyn QueryTarget)> =
        vec![("v1", &v1), ("v2", &v2), ("v3", &v3), ("sharded", &sharded)];
    for q in &w.ranges {
        single.clear_cache();
        let cold = single
            .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
            .unwrap()
            .into_items();
        // The repeat is served by the epoch-keyed range-result cache.
        let cached = single
            .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(cold, cached, "cold vs cached range({q:?})");
        for (label, t) in &targets {
            let got = t
                .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                .unwrap()
                .into_items();
            assert_eq!(cold, got, "{label}: range({q:?})");
        }
    }
    // Paginated walks: a cold walk (cache cleared before every page)
    // and a warm walk (pages sliced from the cached full result) must
    // produce the same item sequence, on every shape.
    for q in w.ranges.iter().take(10) {
        for limit in [1, 3] {
            single.clear_cache();
            let cold_walk = walk(
                |r| {
                    single.clear_cache();
                    single.range_query(&q.re, q.tq, q.alpha, r).unwrap()
                },
                limit,
            );
            single.clear_cache();
            single
                .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
                .unwrap();
            let warm_walk = walk(
                |r| single.range_query(&q.re, q.tq, q.alpha, r).unwrap(),
                limit,
            );
            assert_eq!(
                cold_walk, warm_walk,
                "cold vs cache-sliced range walk({q:?}) limit {limit}"
            );
            for (label, t) in &targets {
                let got = walk(|r| t.range_query(&q.re, q.tq, q.alpha, r).unwrap(), limit);
                assert_eq!(
                    cold_walk, got,
                    "{label}: paginated range({q:?}) limit {limit}"
                );
            }
        }
    }
    // The batch engine agrees with all of the above on the same batch.
    let par_single = single.par_range_query(&w.ranges).unwrap();
    let par_sharded = sharded.par_range_query(&w.ranges).unwrap();
    let par_v3 = v3.par_range_query(&w.ranges).unwrap();
    for (i, q) in w.ranges.iter().enumerate() {
        let want = single
            .range_query(&q.re, q.tq, q.alpha, PageRequest::all())
            .unwrap()
            .into_items();
        assert_eq!(par_single[i], want, "par single range({q:?})");
        assert_eq!(par_sharded[i], want, "par sharded range({q:?})");
        assert_eq!(par_v3[i], want, "par v3 range({q:?})");
    }
}

#[test]
fn query_target_is_polymorphic_over_both_shapes() {
    let (net, ds) = setup(11, 12);
    let single = single_store(&net, &ds);
    let sharded = sharded_store(&net, &ds, Arc::new(ByTime::default()), 3);
    let targets: Vec<&dyn QueryTarget> = vec![&single, &sharded];
    let tu = &ds.trajectories[0];
    let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
    let mut answers = Vec::new();
    for t in &targets {
        assert_eq!(t.len(), ds.trajectories.len());
        answers.push(
            t.where_query(tu.id, mid, 0.0, PageRequest::all())
                .unwrap()
                .into_items(),
        );
        // The cache layer is reachable through the trait too.
        t.set_cache_bytes(1 << 20);
        t.clear_cache();
        assert_eq!(t.cache_stats().entries, 0);
    }
    assert_eq!(answers[0], answers[1]);
}
