//! Durability acceptance tests for the write-ahead-log sidecar:
//!
//! * **replay byte-identity** — a durable store that dies after N live
//!   ingests reopens (single and sharded) to the *same container bytes*
//!   an offline [`StoreBuilder`] run over the same batches produces;
//! * **checkpoint lifecycle** — `checkpoint()` rewrites the container
//!   atomically, truncates the log, and the next open replays nothing;
//!   a checkpoint interrupted between the save and the truncation is
//!   completed on the next open (the absorbed prefix is skipped and
//!   dropped from disk);
//! * **wire surface** — the `tail` and `checkpoint` ops over
//!   [`wire::handle_line_writable`], including the `tail_gap` answer
//!   after a truncation and the idempotent `deduped` re-send answer;
//! * **replication** — a read-only follower driven by
//!   [`serve::follow`] against a live writable leader converges to the
//!   leader's epoch and answers every probe byte-identically.
//!
//! `docs/DURABILITY.md` documents the guarantees these tests pin.

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use utcq::core::serve::{self, Server};
use utcq::core::shard::ByTime;
use utcq::core::{
    wire, CompressParams, FsyncPolicy, Opened, QueryTarget, ShardedStore, StiuParams, Store,
    StoreBuilder, WalConfig,
};
use utcq::network::RoadNetwork;
use utcq::traj::{Dataset, UncertainTrajectory};

const STIU: StiuParams = StiuParams {
    partition_s: 900,
    grid_n: 8,
};

/// A scratch directory unique to one test.
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("utcq-durab-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    dir
}

/// A tiny dataset split into three arrival batches.
fn batches(n: usize, seed: u64) -> (Arc<RoadNetwork>, Vec<Dataset>) {
    let (net, mut ds) = utcq::datagen::generate(&utcq::datagen::profile::tiny(), n, seed);
    let third = n / 3;
    let mut b2 = ds.clone();
    let mut b3 = ds.clone();
    let tail = ds.trajectories.split_off(third);
    b2.trajectories = tail;
    b3.trajectories = b2.trajectories.split_off(third);
    (Arc::new(net), vec![ds, b2, b3])
}

fn params(ds: &Dataset) -> CompressParams {
    CompressParams::with_interval(ds.default_interval)
}

fn single_store(net: &Arc<RoadNetwork>, batches: &[&Dataset]) -> Store {
    let mut b = StoreBuilder::new(Arc::clone(net), params(batches[0])).stiu_params(STIU);
    for ds in batches {
        b = b.ingest(ds).expect("builder ingest");
    }
    b.finish().expect("builder finish")
}

fn store_bytes(store: &Store) -> Vec<u8> {
    let mut bytes = Vec::new();
    store.write(&mut bytes).expect("serialize store");
    bytes
}

#[test]
fn durable_reopen_replays_byte_identically() {
    let dir = tmp_dir("replay-single");
    let (net, all) = batches(9, 61);
    let container = dir.join("c.utcq");
    single_store(&net, &[&all[0]])
        .save(&container)
        .expect("seed container");
    let wal_cfg = || WalConfig::new(dir.join("log.wal"));

    // Two live ingests under the log, then the process "dies".
    let store = Store::open_durable(&container, wal_cfg()).expect("open durable");
    store.ingest(&all[1]).expect("ingest b");
    store.ingest(&all[2]).expect("ingest c");
    drop(store);

    // Reopen: both batches replay, and the state is byte-identical to
    // the offline build over the full history.
    let reopened = Store::open_durable(&container, wal_cfg()).expect("reopen");
    assert_eq!(reopened.snapshot().epoch(), 2, "both batches replay");
    let offline = single_store(&net, &[&all[0], &all[1], &all[2]]);
    assert_eq!(
        store_bytes(&reopened),
        store_bytes(&offline),
        "replayed store must serialize identically to the offline build"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_durable_reopen_replays_byte_identically() {
    let dir = tmp_dir("replay-sharded");
    let (net, all) = batches(9, 62);
    let policy = || Arc::new(ByTime { interval_s: 120 });
    let build = |history: &[&Dataset]| {
        let mut b = StoreBuilder::new(Arc::clone(&net), params(&all[0]))
            .stiu_params(STIU)
            .shard_by(policy(), 3)
            .expect("shard");
        for ds in history {
            b = b.ingest(ds).expect("builder ingest");
        }
        b.finish().expect("builder finish")
    };
    let container = dir.join("c.utcq");
    build(&[&all[0]]).save(&container).expect("seed container");
    let wal_cfg = || WalConfig::new(dir.join("log.wal"));

    let store = ShardedStore::open_durable(&container, wal_cfg()).expect("open durable");
    store.ingest(&all[1]).expect("ingest b");
    store.ingest(&all[2]).expect("ingest c");
    drop(store);

    let reopened = ShardedStore::open_durable(&container, wal_cfg()).expect("reopen");
    assert_eq!(reopened.facade_epoch(), 2);
    let mut live = Vec::new();
    reopened.write(&mut live).expect("serialize");
    let mut offline = Vec::new();
    build(&[&all[0], &all[1], &all[2]])
        .write(&mut offline)
        .expect("serialize offline");
    assert_eq!(
        live, offline,
        "sharded replay must serialize identically to the offline build"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_the_log_and_the_next_open_replays_nothing() {
    let dir = tmp_dir("ckpt");
    let (net, all) = batches(9, 63);
    let container = dir.join("c.utcq");
    single_store(&net, &[&all[0]])
        .save(&container)
        .expect("seed container");
    // `open_durable` defaults the checkpoint target to the container.
    let wal_cfg = || WalConfig::new(dir.join("log.wal"));

    let store = Store::open_durable(&container, wal_cfg()).expect("open durable");
    store.ingest(&all[1]).expect("ingest");
    let before = store.wal_bytes().expect("wal attached");
    let report = store
        .checkpoint()
        .expect("checkpoint")
        .expect("target configured");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.log_bytes, before);
    assert!(
        store.wal_bytes().expect("wal attached") < before,
        "checkpoint must truncate the log"
    );
    drop(store);

    let fresh = Store::open_durable(&container, wal_cfg()).expect("post-checkpoint open");
    assert_eq!(fresh.snapshot().epoch(), 0, "nothing left to replay");
    assert_eq!(
        store_bytes(&fresh),
        store_bytes(&single_store(&net, &[&all[0], &all[1]])),
        "checkpointed container must hold the full history"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_checkpoint_truncation_is_completed_on_reopen() {
    let dir = tmp_dir("ckpt-interrupted");
    let (net, all) = batches(9, 64);
    let container = dir.join("c.utcq");
    single_store(&net, &[&all[0]])
        .save(&container)
        .expect("seed container");
    let wal_cfg = || WalConfig::new(dir.join("log.wal"));

    // A checkpoint that crashed between the container save and the log
    // truncation: the container already holds the batch, the log still
    // carries its record.
    let store = Store::open_durable(&container, wal_cfg()).expect("open durable");
    store.ingest(&all[1]).expect("ingest");
    store.save(&container).expect("checkpoint save half");
    drop(store);

    // Reopen: the absorbed prefix is recognized (every trajectory
    // already present), skipped rather than double-applied, and the
    // interrupted truncation completes on disk.
    let reopened = Store::open_durable(&container, wal_cfg()).expect("reopen");
    assert_eq!(reopened.snapshot().epoch(), 0, "nothing replays");
    assert_eq!(
        store_bytes(&reopened),
        store_bytes(&single_store(&net, &[&all[0], &all[1]])),
    );
    drop(reopened);
    let scan = utcq::core::wal::scan(&std::fs::read(dir.join("log.wal")).expect("read log"))
        .expect("scan log");
    assert!(
        scan.records.is_empty() && !scan.torn,
        "the absorbed prefix must be dropped from disk"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_policies_all_accept_writes_and_replay() {
    let (net, all) = batches(9, 65);
    for (tag, policy) in [
        ("always", FsyncPolicy::Always),
        ("every2", FsyncPolicy::EveryN(2)),
        ("never", FsyncPolicy::Never),
    ] {
        let dir = tmp_dir(&format!("fsync-{tag}"));
        let container = dir.join("c.utcq");
        single_store(&net, &[&all[0]])
            .save(&container)
            .expect("seed container");
        let wal_cfg = || WalConfig::new(dir.join("log.wal")).fsync(policy);
        let store = Store::open_durable(&container, wal_cfg()).expect("open durable");
        store.ingest(&all[1]).expect("ingest b");
        store.ingest(&all[2]).expect("ingest c");
        drop(store);
        let reopened = Store::open_durable(&container, wal_cfg()).expect("reopen");
        assert_eq!(reopened.snapshot().epoch(), 2, "{tag}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Serializes a trajectory into the `ingest` request shape of
/// `PROTOCOL.md`.
fn trajectory_json(tu: &UncertainTrajectory) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, r#"{{"id":{},"times":["#, tu.id);
    for (i, t) in tu.times.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("],\"instances\":[");
    for (w, inst) in tu.instances.iter().enumerate() {
        if w > 0 {
            out.push(',');
        }
        let _ = write!(out, r#"{{"prob":{},"path":["#, inst.prob);
        for (i, e) in inst.path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", e.0);
        }
        out.push_str("],\"positions\":[");
        for (i, p) in inst.positions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", p.path_idx, p.rd);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn ingest_line(id: u64, batch: &Dataset) -> String {
    let tus: Vec<String> = batch.trajectories.iter().map(trajectory_json).collect();
    format!(
        r#"{{"id":{id},"op":"ingest","name":"{}","interval":{},"trajectories":[{}]}}"#,
        batch.name,
        batch.default_interval,
        tus.join(",")
    )
}

#[test]
fn wire_tail_checkpoint_and_dedup_roundtrip() {
    let dir = tmp_dir("wire");
    let (net, all) = batches(9, 66);
    let container = dir.join("c.utcq");
    single_store(&net, &[&all[0]])
        .save(&container)
        .expect("seed container");
    let opened =
        Opened::open_durable(&container, WalConfig::new(dir.join("log.wal"))).expect("open");

    // Ingest over the wire; the record lands in the log's feed.
    let line = ingest_line(1, &all[1]);
    let reply = wire::handle_line_writable(&opened, &line).line;
    assert!(reply.contains(r#""op":"ingest""#), "{reply}");
    assert!(reply.contains(r#""epoch":1"#), "{reply}");

    // Re-sending the identical batch answers idempotently instead of
    // failing on the duplicate ids.
    let retry = wire::handle_line_writable(&opened, &line).line;
    assert!(retry.contains(r#""deduped":true"#), "{retry}");
    assert!(retry.contains(r#""epoch":1"#), "{retry}");

    // `tail` from 0 streams the accepted batch; the reply parses back
    // bit-for-bit through the follower's own parser.
    let tail = wire::handle_line_writable(&opened, r#"{"id":2,"op":"tail","from":0}"#).line;
    let (got, current) = wire::parse_tail_reply(&tail).expect("tail parses");
    assert_eq!(current, 1);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, 1, "batch epoch");
    assert_eq!(got[0].1.trajectories, all[1].trajectories, "bit-for-bit");

    // `checkpoint` rewrites the container and truncates the feed …
    let ck = wire::handle_line_writable(&opened, r#"{"id":3,"op":"checkpoint"}"#).line;
    assert!(ck.contains(r#""op":"checkpoint","epoch":1"#), "{ck}");

    // … after which a resume from before the truncation point is a
    // `tail_gap` (re-sync from a fresh copy), while the current epoch
    // resumes cleanly.
    let gap = wire::handle_line_writable(&opened, r#"{"id":4,"op":"tail","from":0}"#).line;
    assert!(gap.contains(r#""code":"tail_gap""#), "{gap}");
    let ok = wire::handle_line_writable(&opened, r#"{"id":5,"op":"tail","from":1}"#).line;
    let (rest, _) = wire::parse_tail_reply(&ok).expect("tail parses");
    assert!(rest.is_empty(), "{ok}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        Self {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        self.writer.write_all(request.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        line.trim_end().to_string()
    }
}

#[test]
fn follower_converges_and_answers_byte_identically() {
    let dir = tmp_dir("follow");
    let (net, all) = batches(9, 67);
    let container = dir.join("c.utcq");
    single_store(&net, &[&all[0]])
        .save(&container)
        .expect("seed container");

    // Leader: durable, writable, behind a real TCP server.
    let leader = Arc::new(
        Opened::open_durable(&container, WalConfig::new(dir.join("log.wal"))).expect("leader"),
    );
    let server = Server::bind(Arc::clone(&leader), "127.0.0.1:0", 2)
        .expect("bind")
        .writable(true);
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));

    // Follower: a second opening of the same seed container, streaming
    // the leader's log.
    let follower = Arc::new(Opened::open(&container).expect("follower"));
    let stop = Arc::new(AtomicBool::new(false));
    let follow_thread = {
        let follower = Arc::clone(&follower);
        let stop = Arc::clone(&stop);
        let leader_addr = addr.to_string();
        std::thread::spawn(move || serve::follow(&follower, &leader_addr, &stop))
    };

    // Two batches arrive at the leader over the wire.
    let mut client = Client::connect(addr);
    for (i, batch) in [&all[1], &all[2]].into_iter().enumerate() {
        let reply = client.roundtrip(&ingest_line(10 + i as u64, batch));
        assert!(reply.contains(r#""ok":true"#), "{reply}");
    }

    // The follower converges to the leader's epoch.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while follower.epoch() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "follower stuck at epoch {}",
            follower.epoch()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    follow_thread
        .join()
        .expect("follow thread")
        .expect("follow exits clean on stop");
    handle.shutdown();
    runner.join().expect("server thread");

    // Every probe answers byte-identically on leader and follower.
    assert_eq!(follower.len(), leader.len());
    let bounds = leader.network().bounding_rect();
    for batch in &all {
        for tu in &batch.trajectories {
            let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
            for probe in [
                format!(r#"{{"op":"where","traj":{},"t":{mid},"alpha":0}}"#, tu.id),
                format!(
                    r#"{{"op":"range","min_x":{},"min_y":{},"max_x":{},"max_y":{},"tq":{mid},"alpha":0.1,"limit":8}}"#,
                    bounds.min_x, bounds.min_y, bounds.max_x, bounds.max_y
                ),
            ] {
                assert_eq!(
                    wire::handle_line(&leader, &probe).line,
                    wire::handle_line(&follower, &probe).line,
                    "{probe}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
