//! Cross-crate integration: the full pipeline from raw GPS through
//! probabilistic map-matching, UTCQ compression, indexing, and querying —
//! plus the TED baseline on the same data.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use utcq::core::params::CompressParams;
use utcq::core::query::PageRequest;
use utcq::core::stiu::StiuParams;
use utcq::core::Store;
use utcq::datagen::instances::base_positions;
use utcq::datagen::raw::observe;
use utcq::datagen::route::random_route;
use utcq::matcher::{Matcher, MatcherConfig};
use utcq::network::gen::{grid_city, GridCityConfig};
use utcq::traj::{Dataset, Instance};

#[test]
fn raw_gps_to_compressed_queries() {
    let mut rng = StdRng::seed_from_u64(555);
    let net = grid_city(&GridCityConfig::tiny(), &mut rng);
    let matcher = Matcher::new(&net, 150.0);

    let mut trajectories = Vec::new();
    for id in 0..15u64 {
        let Some(route) = random_route(&net, &mut rng, 10, 30) else {
            continue;
        };
        let n = ((net.path_length(&route) / 150.0).round() as usize).clamp(4, 25);
        let times: Vec<i64> = (0..n as i64).map(|i| 40_000 + i * 15).collect();
        let positions = base_positions(&net, &mut rng, &route, &times);
        let truth = Instance {
            path: route,
            positions,
            prob: 1.0,
        };
        let raw = observe(&net, &truth, &times, 8.0, &mut rng);
        if let Some(mut tu) = matcher.match_trajectory(&raw, &MatcherConfig::default()) {
            tu.id = id;
            trajectories.push(tu);
        }
    }
    assert!(
        trajectories.len() >= 10,
        "matcher produced too few trajectories"
    );
    let ds = Dataset {
        name: "e2e".into(),
        default_interval: 15,
        trajectories,
    };
    ds.validate(&net).expect("matched dataset valid");

    let params = CompressParams::with_interval(15);
    let store = Store::build(Arc::new(net.clone()), &ds, params, StiuParams::default()).unwrap();
    assert!(store.ratios().total > 1.5);

    // Every query type answers consistently with the oracle.
    for tu in &ds.trajectories {
        let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
        let got = store
            .where_query(tu.id, mid, 0.0, PageRequest::all())
            .unwrap()
            .into_items();
        let want = utcq::core::oracle::where_query(&net, tu, mid, 0.0);
        assert_eq!(got.len(), want.len());
    }

    // Full decompression round-trips.
    let back = utcq::core::decompress_dataset(&net, store.snapshot().compressed()).unwrap();
    for (a, b) in ds.trajectories.iter().zip(&back.trajectories) {
        utcq::core::decompress::check_lossy_roundtrip(a, b, params.eta_d, params.eta_p).unwrap();
    }
}

#[test]
fn utcq_beats_ted_on_ratio_everywhere() {
    // The headline claim, verified on all three profiles at small scale.
    for (i, profile) in utcq::datagen::profile::all().iter().enumerate() {
        let (net, ds) = utcq::datagen::generate(profile, 60, 4000 + i as u64);
        let params = CompressParams::with_interval(ds.default_interval);
        let cds = utcq::core::compress_dataset(&net, &ds, &params).unwrap();
        let tds = utcq::ted::compress_dataset(&net, &ds, &utcq::ted::TedParams::default()).unwrap();
        let u = cds.ratios().total;
        let t = tds.ratios().total;
        assert!(
            u > 1.5 * t,
            "{}: UTCQ ratio {u:.2} must clearly beat TED {t:.2}",
            profile.name
        );
        // Both must actually compress.
        assert!(t > 1.0, "{}: TED ratio {t:.2}", profile.name);
    }
}

#[test]
fn ted_and_utcq_agree_on_queries() {
    let profile = utcq::datagen::profile::cd();
    let (net, ds) = utcq::datagen::generate(&profile, 40, 4242);
    let params = CompressParams::with_interval(ds.default_interval);
    let store = Store::build(Arc::new(net.clone()), &ds, params, StiuParams::default()).unwrap();
    let tstore = utcq::ted::TedStore::build(
        &net,
        &ds,
        utcq::ted::TedParams::default(),
        utcq::ted::TedStoreParams::default(),
    )
    .unwrap();
    for tu in ds.trajectories.iter().take(20) {
        let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
        let a = store
            .where_query(tu.id, mid, 0.25, PageRequest::all())
            .unwrap()
            .into_items();
        let b = tstore.where_query(tu.id, mid, 0.25).unwrap();
        assert_eq!(a.len(), b.len(), "traj {}", tu.id);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.instance, y.instance);
            assert_eq!(x.loc.edge, y.loc.edge);
            assert!((x.loc.ndist - y.loc.ndist).abs() < 1e-6);
        }
    }
}

#[test]
fn compression_is_deterministic() {
    let profile = utcq::datagen::profile::tiny();
    let (net, ds) = utcq::datagen::generate(&profile, 20, 777);
    let params = CompressParams::with_interval(ds.default_interval);
    let a = utcq::core::compress_dataset(&net, &ds, &params).unwrap();
    let b = utcq::core::compress_dataset(&net, &ds, &params).unwrap();
    assert_eq!(a.compressed, b.compressed);
    for (x, y) in a.trajectories.iter().zip(&b.trajectories) {
        assert_eq!(x.t_bits, y.t_bits);
        assert_eq!(x.refs.len(), y.refs.len());
        assert_eq!(x.nrefs.len(), y.nrefs.len());
    }
}
