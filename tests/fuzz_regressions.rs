//! Replays the checked-in fuzz regression corpus
//! (`tests/fuzz_regressions/*.bin`) through the same harnesses the
//! fuzzer uses: every input once made a parser panic (or, for the
//! deep-nesting seed, overflow the stack) and must now come back as a
//! clean `Err`. `utcq audit fuzz --replay` runs the same check from
//! the command line.

use std::path::Path;

#[test]
fn regression_corpus_replays_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fx = utcq::audit::fuzz::Fixtures::load(root).expect("load fixtures");
    let failures = utcq::audit::fuzz::replay_dir(&fx, &root.join("tests/fuzz_regressions"))
        .expect("read corpus");
    assert!(
        failures.is_empty(),
        "regression inputs panic again: {failures:?}"
    );
}

#[test]
fn corpus_is_checked_in_and_non_empty() {
    // The corpus directory must exist with at least the seeded
    // reproducers — an accidentally deleted corpus would make the
    // replay test pass vacuously.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_regressions");
    let n = std::fs::read_dir(&dir)
        .expect("tests/fuzz_regressions must exist")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "bin"))
        })
        .count();
    assert!(n >= 3, "expected the seeded corpus, found {n} input(s)");
}
