//! The paper's worked examples, end-to-end through the public API.
//!
//! Everything here is cross-checked against numbers printed in the paper:
//! Table 2 (TED representation), Table 3 (improved TED representation),
//! Table 4 (referential representation), Example 1 (FJD), Example 2
//! (Algorithm 1), Examples 3–4 (queries), and the §4.1/§4.4 SIAR and
//! Exp-Golomb worked examples.

use std::sync::Arc;

use utcq::core::params::CompressParams;
use utcq::core::query::PageRequest;
use utcq::core::stiu::StiuParams;
use utcq::core::Store;
use utcq::network::Rect;
use utcq::traj::paper_fixture::{self, hms};
use utcq::traj::{Dataset, TedView};

fn paper_store(fx: &utcq::traj::paper_fixture::PaperFixture) -> Store {
    let ds = Dataset {
        name: "paper".into(),
        default_interval: paper_fixture::DEFAULT_INTERVAL,
        trajectories: vec![fx.tu.clone()],
    };
    Store::build(
        Arc::new(fx.example.net.clone()),
        &ds,
        CompressParams::with_interval(paper_fixture::DEFAULT_INTERVAL),
        StiuParams {
            partition_s: 900, // the paper's 15-minute example partition
            grid_n: 4,
        },
    )
    .unwrap()
}

#[test]
fn table3_representation() {
    let fx = paper_fixture::build();
    let views: Vec<TedView> = fx
        .tu
        .instances
        .iter()
        .map(|i| TedView::from_instance(&fx.example.net, i))
        .collect();
    assert_eq!(views[0].entries, vec![1, 2, 1, 2, 2, 0, 4, 1, 0]);
    assert_eq!(views[1].entries, vec![1, 1, 1, 2, 2, 0, 4, 1, 0]);
    assert_eq!(views[2].entries, vec![1, 2, 1, 2, 2, 0, 4, 1, 2]);
}

#[test]
fn siar_example_bit_lengths() {
    // §4.4: deviations ⟨0, 1, 0, −1, 0, 0⟩ encode as 12 bits.
    let fx = paper_fixture::build();
    let buf = utcq::core::siar::encode(&fx.tu.times, 240).unwrap();
    // 1 bit day + 17 bits second-of-day + 12 bits of deviations.
    assert_eq!(buf.len_bits(), 30);
}

#[test]
fn compressed_structure_matches_example2() {
    // Algorithm 1 keeps Tu¹₁ as the only reference.
    let fx = paper_fixture::build();
    let store = paper_store(&fx);
    let snap = store.snapshot();
    let ct = &snap.compressed().trajectories[0];
    assert_eq!(ct.refs.len(), 1);
    assert_eq!(ct.refs[0].orig_idx, 0);
    assert_eq!(ct.nrefs.len(), 2);
}

#[test]
fn example3_queries_on_compressed_data() {
    let fx = paper_fixture::build();
    let store = paper_store(&fx);
    // where(Tu¹, 5:21:25, 0.25) = ⟨(v6→v7), 150⟩.
    let hits = store
        .where_query(1, hms(5, 21, 25), 0.25, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].loc.edge, fx.example.edge(6, 7));
    assert!((hits[0].loc.ndist - 150.0).abs() < 1.6);
    // when(Tu¹, ⟨(v6→v7), 0.75⟩, 0.25) = 5:21:25.
    let hits = store
        .when_query(1, fx.example.edge(6, 7), 0.75, 0.25, PageRequest::all())
        .unwrap()
        .into_items();
    assert_eq!(hits.len(), 1);
    assert!((hits[0].time - hms(5, 21, 25) as f64).abs() < 3.5);
}

#[test]
fn example4_range_queries() {
    let fx = paper_fixture::build();
    let store = paper_store(&fx);
    let t = hms(5, 5, 25);
    // A region covering the whole corridor returns Tu¹ at α = 0.5 …
    let corridor = Rect::new(-10.0, -10.0, 70.0, 10.0);
    assert_eq!(
        store
            .range_query(&corridor, t, 0.5, PageRequest::all())
            .unwrap()
            .into_items(),
        vec![1]
    );
    // … while RE₁ far from every instance returns nothing (Lemma 4).
    let re1 = Rect::new(100.0, 100.0, 120.0, 120.0);
    assert!(store
        .range_query(&re1, t, 0.5, PageRequest::all())
        .unwrap()
        .items
        .is_empty());
}

#[test]
fn ted_baseline_on_paper_example() {
    let fx = paper_fixture::build();
    let ds = Dataset {
        name: "paper".into(),
        default_interval: paper_fixture::DEFAULT_INTERVAL,
        trajectories: vec![fx.tu.clone()],
    };
    let tds = utcq::ted::compress_dataset(&fx.example.net, &ds, &utcq::ted::TedParams::default())
        .unwrap();
    // TED keeps the T' bit-strings verbatim (ratio 1)…
    assert_eq!(tds.compressed.tflag, tds.raw.tflag);
    // …and its time pairs keep indices 0,1,2,3,4,6 (Table 2).
    let pairs = utcq::ted::time::kept_pairs(&fx.tu.times);
    let idx: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    assert_eq!(idx, vec![0, 1, 2, 3, 4, 6]);
    // Decompression is exact for paths and distances (Table 3's rds are
    // dyadic at ηD = 1/128); probabilities quantize within ηp.
    let back = utcq::ted::decompress_dataset(&fx.example.net, &tds).unwrap();
    for (a, b) in back.trajectories[0].instances.iter().zip(&fx.tu.instances) {
        assert_eq!(a.path, b.path);
        assert_eq!(a.positions, b.positions);
        assert!((a.prob - b.prob).abs() <= 1.0 / 512.0);
    }
}
