//! Probabilistic query workload over compressed uncertain trajectories,
//! with answers cross-checked against the uncompressed oracle.
//!
//! Run: `cargo run --release --example query_workload`

use std::sync::Arc;
use std::time::Instant;

use utcq::core::oracle;
use utcq::core::params::CompressParams;
use utcq::core::query::PageRequest;
use utcq::core::stiu::StiuParams;
use utcq::core::Store;
use utcq::network::Rect;

fn main() {
    let profile = utcq::datagen::profile::cd();
    let (net, ds) = utcq::datagen::generate(&profile, 150, 5);
    let params = CompressParams::with_interval(ds.default_interval);
    let store = Store::build(
        Arc::new(net.clone()),
        &ds,
        params,
        StiuParams {
            partition_s: 900,
            grid_n: 32,
        },
    )
    .unwrap();
    let (s_bits, t_bits) = store.snapshot().stiu().size_bits(params.p_codec().width());
    println!(
        "store: {} trajectories compressed at ratio {:.2}; StIU index {} B spatial + {} B temporal",
        ds.trajectories.len(),
        store.ratios().total,
        s_bits / 8,
        t_bits / 8
    );

    // A mixed workload, verified against the oracle.
    let mut where_checked = 0;
    let mut when_checked = 0;
    let mut range_agree = 0;
    let mut range_total = 0;
    let t0 = Instant::now();
    for (k, tu) in ds.trajectories.iter().enumerate().take(100) {
        let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
        let got = store
            .where_query(tu.id, mid, 0.25, PageRequest::all())
            .unwrap()
            .into_items();
        let want = oracle::where_query(&net, tu, mid, 0.25);
        assert_eq!(got.len(), want.len(), "where answers must agree");
        where_checked += got.len();

        let edge = tu.top_instance().path[0];
        let got = store
            .when_query(tu.id, edge, 0.9, 0.25, PageRequest::all())
            .unwrap()
            .into_items();
        let want = oracle::when_query(&net, tu, edge, 0.9, 0.25);
        assert_eq!(got.len(), want.len(), "when answers must agree");
        when_checked += got.len();

        if k % 5 == 0 {
            let b = net.bounding_rect();
            let re = Rect::new(
                b.min_x + (k % 4) as f64 * b.width() / 4.0,
                b.min_y,
                b.min_x + ((k % 4) + 1) as f64 * b.width() / 4.0,
                b.max_y,
            );
            let got = store
                .range_query(&re, mid, 0.3, PageRequest::all())
                .unwrap()
                .into_items();
            let mut want = oracle::range_query(&net, &ds, &re, mid, 0.3);
            want.sort_unstable(); // store answers are ascending by id
            range_total += 1;
            if got == want {
                range_agree += 1;
            }
        }
    }
    println!(
        "verified {} where answers, {} when answers, {}/{} range queries agree — in {:?}",
        where_checked,
        when_checked,
        range_agree,
        range_total,
        t0.elapsed()
    );
}
