//! Quickstart: generate a synthetic uncertain-trajectory dataset,
//! compress it with UTCQ, query the compressed form, and decompress.
//!
//! Run: `cargo run --release --example quickstart`

use utcq::core::params::CompressParams;
use utcq::core::query::CompressedStore;
use utcq::core::stiu::StiuParams;

fn main() {
    // 1. A synthetic road network + uncertain trajectories (the stand-in
    //    for the paper's probabilistically map-matched taxi data).
    let profile = utcq::datagen::profile::cd();
    let (net, ds) = utcq::datagen::generate(&profile, 50, 42);
    println!(
        "dataset: {} trajectories, {} instances, network {} vertices / {} edges",
        ds.trajectories.len(),
        ds.instance_count(),
        net.vertex_count(),
        net.edge_count()
    );

    // 2. Compress + index in one step.
    let params = CompressParams::with_interval(ds.default_interval);
    let store = CompressedStore::build(&net, &ds, params, StiuParams::default())
        .expect("compression succeeds");
    let r = store.cds.ratios();
    println!(
        "compression ratios — total {:.2} (T {:.2}, E {:.2}, D {:.2}, T' {:.2}, p {:.2})",
        r.total, r.t, r.e, r.d, r.tflag, r.p
    );

    // 3. Query the compressed data directly.
    let tu = &ds.trajectories[0];
    let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
    let hits = store.where_query(tu.id, mid, 0.2).unwrap();
    println!(
        "where(Tu{}, t={mid}, α=0.2): {} instance locations",
        tu.id,
        hits.len()
    );
    for h in hits.iter().take(3) {
        println!(
            "  instance {} (p={:.3}) at edge {:?} + {:.1} m",
            h.instance, h.prob, h.loc.edge, h.loc.ndist
        );
    }

    let probe = tu.top_instance().path[tu.top_instance().path.len() / 2];
    let whens = store.when_query(tu.id, probe, 0.5, 0.1).unwrap();
    println!("when(Tu{}, mid-path edge, α=0.1): {} passing times", tu.id, whens.len());

    let bounds = net.bounding_rect();
    let re = utcq::network::Rect::new(
        bounds.min_x,
        bounds.min_y,
        bounds.min_x + bounds.width() * 0.3,
        bounds.min_y + bounds.height() * 0.3,
    );
    let in_range = store.range_query(&re, mid, 0.3).unwrap();
    println!("range(SW corner, t={mid}, α=0.3): {} trajectories", in_range.len());

    // 4. Decompress losslessly (up to the PDDP error bounds).
    let back = utcq::core::decompress_dataset(&net, &store.cds).unwrap();
    utcq::core::decompress::check_lossy_roundtrip(
        &ds.trajectories[0],
        &back.trajectories[0],
        params.eta_d,
        params.eta_p,
    )
    .expect("round-trip within error bounds");
    println!("decompression verified within ηD = {} / ηp = {}", params.eta_d, params.eta_p);
}
