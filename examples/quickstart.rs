//! Quickstart: generate a synthetic uncertain-trajectory dataset, build
//! a store through incremental ingest, query it with pagination, persist
//! it as a self-contained container, and reopen it with zero
//! side-channel arguments.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::Arc;

use utcq::core::params::CompressParams;
use utcq::core::query::PageRequest;
use utcq::core::stiu::StiuParams;
use utcq::core::store::{Store, StoreBuilder};

fn main() {
    // 1. A synthetic road network + uncertain trajectories (the stand-in
    //    for the paper's probabilistically map-matched taxi data).
    let profile = utcq::datagen::profile::cd();
    let (net, mut ds) = utcq::datagen::generate(&profile, 50, 42);
    println!(
        "dataset: {} trajectories, {} instances, network {} vertices / {} edges",
        ds.trajectories.len(),
        ds.instance_count(),
        net.vertex_count(),
        net.edge_count()
    );

    // 2. Build the store incrementally: batches arrive over time and only
    //    the new cohort is compressed and indexed — earlier batches are
    //    never recompressed.
    let mut late_batch = ds.clone();
    late_batch.trajectories = ds.trajectories.split_off(30);
    let params = CompressParams::with_interval(ds.default_interval);
    let store = StoreBuilder::new(Arc::new(net), params)
        .stiu_params(StiuParams::default())
        .ingest(&ds)
        .expect("first batch compresses")
        .ingest(&late_batch)
        .expect("second batch compresses")
        .finish()
        .expect("store finalizes");
    let r = store.ratios();
    println!(
        "compression ratios — total {:.2} (T {:.2}, E {:.2}, D {:.2}, T' {:.2}, p {:.2})",
        r.total, r.t, r.e, r.d, r.tflag, r.p
    );

    // 3. Query the compressed data directly; answers come in pages.
    let tu = &ds.trajectories[0];
    let mid = (tu.times[0] + tu.times[tu.times.len() - 1]) / 2;
    let page = store
        .where_query(tu.id, mid, 0.2, PageRequest::first(16))
        .unwrap();
    println!(
        "where(Tu{}, t={mid}, α=0.2): {} instance locations (has_more={})",
        tu.id,
        page.items.len(),
        page.has_more
    );
    for h in page.items.iter().take(3) {
        println!(
            "  instance {} (p={:.3}) at edge {:?} + {:.1} m",
            h.instance, h.prob, h.loc.edge, h.loc.ndist
        );
    }

    let probe = tu.top_instance().path[tu.top_instance().path.len() / 2];
    let whens = store
        .when_query(tu.id, probe, 0.5, 0.1, PageRequest::default())
        .unwrap();
    println!(
        "when(Tu{}, mid-path edge, α=0.1): {} passing times",
        tu.id,
        whens.items.len()
    );

    let bounds = store.network().bounding_rect();
    let re = utcq::network::Rect::new(
        bounds.min_x,
        bounds.min_y,
        bounds.min_x + bounds.width() * 0.3,
        bounds.min_y + bounds.height() * 0.3,
    );
    let in_range = store
        .range_query(&re, mid, 0.3, PageRequest::all())
        .unwrap();
    println!(
        "range(SW corner, t={mid}, α=0.3): {} trajectories",
        in_range.items.len()
    );

    // 4. Persist as a self-contained v2 container and reopen: network,
    //    dataset and index all travel inside the file.
    let path = std::env::temp_dir().join("utcq-quickstart.utcq");
    store.save(&path).expect("container writes");
    let reopened = Store::open(&path).expect("container reopens");
    let again = reopened
        .where_query(tu.id, mid, 0.2, PageRequest::first(16))
        .unwrap();
    assert_eq!(
        again.items, page.items,
        "reopened store answers identically"
    );
    println!(
        "reopened {} ({} trajectories) and got identical answers",
        path.display(),
        reopened.len()
    );

    // 5. Decompress losslessly (up to the PDDP error bounds).
    let back =
        utcq::core::decompress_dataset(store.network(), store.snapshot().compressed()).unwrap();
    utcq::core::decompress::check_lossy_roundtrip(
        &ds.trajectories[0],
        &back.trajectories[0],
        params.eta_d,
        params.eta_p,
    )
    .expect("round-trip within error bounds");
    println!(
        "decompression verified within ηD = {} / ηp = {}",
        params.eta_d, params.eta_p
    );
    std::fs::remove_file(&path).ok();
}
