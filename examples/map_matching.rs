//! End-to-end pipeline from raw GPS: probabilistic map-matching turns
//! noisy fixes into uncertain trajectories (the paper's Fig. 1), which
//! UTCQ then compresses.
//!
//! Run: `cargo run --release --example map_matching`

use rand::rngs::StdRng;
use rand::SeedableRng;
use utcq::core::params::CompressParams;
use utcq::datagen::instances::base_positions;
use utcq::datagen::raw::observe;
use utcq::datagen::route::random_route;
use utcq::matcher::{Matcher, MatcherConfig};
use utcq::network::gen::{grid_city, GridCityConfig};
use utcq::traj::{Dataset, Instance};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = grid_city(&GridCityConfig::default(), &mut rng);
    let matcher = Matcher::new(&net, 200.0);
    let cfg = MatcherConfig {
        sigma: 12.0,
        ..MatcherConfig::default()
    };

    // Simulate vehicles driving ground-truth routes, observed with 12 m
    // GPS noise at 20 s intervals (low-rate + noisy = ambiguous).
    let mut matched = Vec::new();
    let mut ambiguous = 0usize;
    for id in 0..40u64 {
        let Some(route) = random_route(&net, &mut rng, 12, 30) else {
            continue;
        };
        let n = ((net.path_length(&route) / (11.0 * 20.0)).round() as usize).clamp(4, 30);
        let times: Vec<i64> = (0..n as i64).map(|i| 36_000 + i * 20).collect();
        let positions = base_positions(&net, &mut rng, &route, &times);
        let truth = Instance {
            path: route,
            positions,
            prob: 1.0,
        };
        let raw = observe(&net, &truth, &times, cfg.sigma, &mut rng);
        if let Some(mut tu) = matcher.match_trajectory(&raw, &cfg) {
            tu.id = id;
            if tu.instance_count() > 1 {
                ambiguous += 1;
            }
            // How well did the top instance recover the truth?
            let top = tu.top_instance();
            let overlap = top.path.iter().filter(|e| truth.path.contains(e)).count();
            if id < 5 {
                println!(
                    "trajectory {id}: {} instances, top p={:.3}, {}/{} true edges recovered",
                    tu.instance_count(),
                    top.prob,
                    overlap,
                    truth.path.len()
                );
            }
            matched.push(tu);
        }
    }
    println!(
        "\nmatched {} raw trajectories; {} with path ambiguity (>1 instance)",
        matched.len(),
        ambiguous
    );

    // Compress the matcher's output with UTCQ.
    let ds = Dataset {
        name: "matched".into(),
        default_interval: 20,
        trajectories: matched,
    };
    let params = CompressParams::with_interval(20);
    let cds = utcq::core::compress_dataset(&net, &ds, &params).unwrap();
    let r = cds.ratios();
    println!(
        "compressed the matched dataset at ratio {:.2} (E {:.2}, T {:.2}, D {:.2})",
        r.total, r.e, r.t, r.d
    );
}
