//! A Hangzhou-style taxi fleet day: generate the HZ-profile dataset,
//! compress it with both UTCQ and the TED baseline, and compare footprints
//! component by component (the paper's Table 8 in miniature).
//!
//! Run: `cargo run --release --example taxi_fleet`

use std::time::Instant;

use utcq::core::params::CompressParams;

fn main() {
    let profile = utcq::datagen::profile::hz();
    let (net, ds) = utcq::datagen::generate(&profile, 200, 99);
    let raw = utcq::traj::size::dataset_uncompressed_bits(&ds);
    println!(
        "fleet: {} uncertain trajectories / {} instances, raw {} KiB",
        ds.trajectories.len(),
        ds.instance_count(),
        raw.total() / 8 / 1024
    );

    let params = CompressParams {
        eta_p: 1.0 / 2048.0, // the paper's HZ setting
        ..CompressParams::with_interval(ds.default_interval)
    };
    let t0 = Instant::now();
    let cds = utcq::core::compress_dataset(&net, &ds, &params).unwrap();
    let utcq_time = t0.elapsed();

    let tparams = utcq::ted::TedParams {
        eta_p: 1.0 / 2048.0,
        ..utcq::ted::TedParams::default()
    };
    let t0 = Instant::now();
    let tds = utcq::ted::compress_dataset(&net, &ds, &tparams).unwrap();
    let ted_time = t0.elapsed();

    println!("\n{:<12}{:>12}{:>12}", "component", "UTCQ bits", "TED bits");
    let rows = [
        ("T", cds.compressed.t, tds.compressed.t),
        (
            "E (+SV)",
            cds.compressed.e + cds.compressed.sv,
            tds.compressed.e + tds.compressed.sv,
        ),
        ("D", cds.compressed.d, tds.compressed.d),
        ("T'", cds.compressed.tflag, tds.compressed.tflag),
        ("p", cds.compressed.p, tds.compressed.p),
    ];
    for (name, u, t) in rows {
        println!("{name:<12}{u:>12}{t:>12}");
    }
    println!(
        "{:<12}{:>12}{:>12}",
        "total",
        cds.compressed.total(),
        tds.compressed.total()
    );
    println!(
        "\nUTCQ ratio {:.2} in {:?}; TED ratio {:.2} in {:?} (TED buffered {} KiB of edge codes)",
        cds.ratios().total,
        utcq_time,
        tds.ratios().total,
        ted_time,
        tds.peak_buffer_bits / 8 / 1024
    );
}
